"""The project-specific lint rules behind ``repro-lint``.

Each rule is a small AST visitor producing :class:`Violation` records.
The rules encode conventions that plain pytest only notices once they
break at runtime — see ``docs/development.md`` for the catalogue, the
rationale of each rule and the suppression pragmas.

Rules marked ``library_only`` apply to files inside the ``repro``
package (any path with a ``repro`` directory component); the remaining
rules also police ``tests/`` and ``benchmarks/``.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "Rule",
    "ALL_RULES",
    "is_library_path",
    "Suppressions",
    "collect_suppressions",
]


@dataclass(frozen=True)
class Violation:
    """One lint finding: where it is, which rule fired, and why."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


def is_library_path(filename: str) -> bool:
    """True for files inside the ``repro`` package (``src/repro/**``)."""
    return "repro" in PurePath(filename.replace("\\", "/")).parts


_DISABLE_RE = re.compile(
    r"#\s*lint:\s*(disable|disable-file)\s*=\s*([A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)"
)
_BROAD_EXCEPT_RE = re.compile(r"#\s*lint:\s*allow-broad-except\(([^)]*)\)")

# Compound statements own whole blocks: expanding a trailing pragma to
# their full extent would silently silence entire function bodies, so
# extent expansion applies to simple (block-less) statements only.
_SIMPLE_STMTS = (
    ast.Assign,
    ast.AugAssign,
    ast.AnnAssign,
    ast.Expr,
    ast.Return,
    ast.Raise,
    ast.Assert,
    ast.Delete,
    ast.Import,
    ast.ImportFrom,
    ast.Global,
    ast.Nonlocal,
)


@dataclass
class Suppressions:
    """Which rules are silenced where, parsed from a file's comments."""

    file_level: Set[str] = field(default_factory=set)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def add(self, line: int, rule: str) -> None:
        self.by_line.setdefault(line, set()).add(rule)

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_level:
            return True
        if rule in self.by_line.get(line, ()):
            return True
        # A pragma on its own line guards the statement below it.
        return rule in self.by_line.get(line - 1, ())


def _statement_extents(tree: ast.Module) -> List[Tuple[int, int]]:
    """``(lineno, end_lineno)`` for every multi-line simple statement."""
    extents: List[Tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, _SIMPLE_STMTS):
            continue
        end = getattr(node, "end_lineno", None)
        if end is not None and end > node.lineno:
            extents.append((node.lineno, end))
    return extents


def collect_suppressions(
    source: str, tree: Optional[ast.Module] = None
) -> Suppressions:
    """Parse the ``# lint:`` pragmas out of ``source``'s comments.

    With ``tree`` (the parsed module) given, a pragma trailing any
    physical line of a multi-line *simple* statement covers the whole
    statement extent — a ``# lint: disable=R002`` after the closing
    bracket of a three-line list suppresses violations reported on all
    three lines, not just the one carrying the comment.
    """
    suppressions = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line = token.start[0]
        for match in _DISABLE_RE.finditer(token.string):
            rules = {r.strip() for r in match.group(2).split(",")}
            if match.group(1) == "disable-file":
                suppressions.file_level.update(rules)
            else:
                for rule in rules:
                    suppressions.add(line, rule)
        for match in _BROAD_EXCEPT_RE.finditer(token.string):
            if match.group(1).strip():
                suppressions.add(line, "R005")
    if tree is not None and suppressions.by_line:
        # Key line-level pragmas by statement extent: a pragma landing
        # anywhere inside a multi-line statement guards every physical
        # line of that statement.
        extents = _statement_extents(tree)
        for line, rules in list(suppressions.by_line.items()):
            for low, high in extents:
                if low <= line <= high:
                    for covered in range(low, high + 1):
                        for rule in rules:
                            suppressions.add(covered, rule)
    return suppressions


def _dotted_chain(node: ast.AST) -> Tuple[str, ...]:
    """``a.b.c`` as ``("a", "b", "c")``; empty tuple if not a plain chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(reversed(parts))
    return ()


class Rule:
    """Base class: subclasses set ``id``/``title`` and implement check()."""

    id: str = "R000"
    title: str = ""
    library_only: bool = False

    def applies_to(self, filename: str) -> bool:
        return not self.library_only or is_library_path(filename)

    def check(self, tree: ast.Module, filename: str) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, node: ast.AST, filename: str, message: str) -> Violation:
        return Violation(
            path=filename,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            rule=self.id,
            message=message,
        )


class UnseededRandomRule(Rule):
    """R001 — all randomness must flow through an explicit rng/seed.

    Module-level RNG state (``random.random()``, ``np.random.rand()``)
    makes algorithm output depend on call order, which breaks the
    determinism contract every construction in this library promises.
    Allowed: constructing explicit generators (``np.random.default_rng``,
    ``random.Random``) that take the seed as an argument.
    """

    id = "R001"
    title = "unseeded random/np.random call"
    library_only = True

    ALLOWED_NUMPY = frozenset(
        {"default_rng", "Generator", "BitGenerator", "SeedSequence", "PCG64", "Philox"}
    )
    ALLOWED_STDLIB = frozenset({"Random"})

    def check(self, tree: ast.Module, filename: str) -> Iterator[Violation]:
        aliases: Dict[str, Tuple[str, ...]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    target = tuple(alias.name.split("."))
                    if target[0] in ("random", "numpy"):
                        aliases[alias.asname or target[0]] = target
            elif isinstance(node, ast.ImportFrom) and node.module:
                module = tuple(node.module.split("."))
                for alias in node.names:
                    full = module + (alias.name,)
                    if full == ("numpy", "random"):
                        aliases[alias.asname or alias.name] = full
                        continue
                    if module == ("random",) and alias.name not in self.ALLOWED_STDLIB:
                        yield self.violation(
                            node,
                            filename,
                            f"from random import {alias.name}: pass an "
                            "explicit rng/seed instead of module-level state",
                        )
                    elif (
                        module == ("numpy", "random")
                        and alias.name not in self.ALLOWED_NUMPY
                    ):
                        yield self.violation(
                            node,
                            filename,
                            f"from numpy.random import {alias.name}: use "
                            "numpy.random.default_rng(seed) and pass the rng",
                        )
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted_chain(node.func)
            if not chain or chain[0] not in aliases:
                continue
            full = aliases[chain[0]] + chain[1:]
            if full[:1] == ("random",) and len(full) == 2:
                if full[1] not in self.ALLOWED_STDLIB:
                    yield self.violation(
                        node,
                        filename,
                        f"unseeded call random.{full[1]}(): route randomness "
                        "through an explicit rng/seed parameter",
                    )
            elif full[:2] == ("numpy", "random") and len(full) == 3:
                if full[2] not in self.ALLOWED_NUMPY:
                    yield self.violation(
                        node,
                        filename,
                        f"unseeded call np.random.{full[2]}(): use "
                        "np.random.default_rng(seed) and pass the rng",
                    )


class FloatEqualityRule(Rule):
    """R002 — no ``==``/``!=``/``in`` against float expressions.

    Geometric quantities accumulate rounding; exact comparison is almost
    always a latent bug.  This includes membership tests — ``x in (0.5,
    1.5)`` is a chain of exact ``==`` in disguise (the bug behind the
    ``collinear_manhattan`` corner test).  Use
    ``math.isclose``/``np.isclose`` or, where exact zero is a genuine
    sentinel (division guards, untouched matrix entries), suppress with
    ``# lint: disable=R002 (why exact is right)``.

    Limitation: only float *literals* and ``float(...)`` calls are
    recognised — ``corner[0] in (p[0], q[0])`` on variables needs type
    information an AST rule does not have.
    """

    id = "R002"
    title = "float equality comparison"
    library_only = True

    @staticmethod
    def _is_float_expr(node: ast.AST) -> bool:
        if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
            node = node.operand
        if isinstance(node, ast.Constant) and isinstance(node.value, float):
            return True
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "float"
        ):
            return True
        return False

    @classmethod
    def _is_float_membership(cls, left: ast.AST, right: ast.AST) -> bool:
        """True for ``x in (...)`` where a float is on either side."""
        if cls._is_float_expr(left):
            return True
        if isinstance(right, (ast.Tuple, ast.List, ast.Set)):
            return any(cls._is_float_expr(element) for element in right.elts)
        return False

    def check(self, tree: ast.Module, filename: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Compare):
                continue
            left = node.left
            for op, right in zip(node.ops, node.comparators):
                if isinstance(op, (ast.Eq, ast.NotEq)) and (
                    self._is_float_expr(left) or self._is_float_expr(right)
                ):
                    yield self.violation(
                        node,
                        filename,
                        "float equality: use math.isclose(...) or mark an "
                        "exact-zero sentinel with `# lint: disable=R002 (reason)`",
                    )
                elif isinstance(op, (ast.In, ast.NotIn)) and (
                    self._is_float_membership(left, right)
                ):
                    yield self.violation(
                        node,
                        filename,
                        "float membership test is exact equality in disguise: "
                        "compare with math.isclose(...) per element or mark "
                        "with `# lint: disable=R002 (reason)`",
                    )
                left = right


class RegistryPicklableRule(Rule):
    """R003 — every ``ALGORITHMS`` entry must be a named module-level callable.

    The batch engine ships jobs across process boundaries; pickle can
    only address module-level names, so a lambda or closure in the
    registry fails later, inside a worker, with an opaque error.
    """

    id = "R003"
    title = "non-picklable registry entry"
    library_only = False

    REGISTRY_NAMES = frozenset({"ALGORITHMS"})

    @staticmethod
    def _module_level_callables(tree: ast.Module) -> Set[str]:
        names: Set[str] = set()
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                names.add(node.name)
            elif isinstance(node, (ast.Import, ast.ImportFrom)):
                for alias in node.names:
                    names.add(alias.asname or alias.name.split(".")[0])
        return names

    def _check_value(
        self, value: ast.AST, filename: str, module_names: Set[str], at_module_level: bool
    ) -> Iterator[Violation]:
        if isinstance(value, ast.Lambda):
            yield self.violation(
                value,
                filename,
                "lambda in ALGORITHMS is not picklable; define a named "
                "module-level runner function",
            )
        elif isinstance(value, ast.Call):
            yield self.violation(
                value,
                filename,
                "computed callable in ALGORITHMS (closure/partial) is not "
                "picklable; define a named module-level runner function",
            )
        elif isinstance(value, ast.Name):
            if at_module_level and value.id not in module_names:
                yield self.violation(
                    value,
                    filename,
                    f"ALGORITHMS entry {value.id!r} is not a module-level "
                    "def/import; pickle cannot address it",
                )

    def check(self, tree: ast.Module, filename: str) -> Iterator[Violation]:
        module_names = self._module_level_callables(tree)
        module_statements = set(map(id, tree.body))
        for node in ast.walk(tree):
            targets: List[ast.AST] = []
            value = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            if value is None:
                continue
            at_top = id(node) in module_statements
            for target in targets:
                if (
                    isinstance(target, ast.Name)
                    and target.id in self.REGISTRY_NAMES
                    and isinstance(value, ast.Dict)
                ):
                    for entry in value.values:
                        yield from self._check_value(
                            entry, filename, module_names, at_top
                        )
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in self.REGISTRY_NAMES
                ):
                    yield from self._check_value(value, filename, module_names, at_top)


class FrozenCoreObjectsRule(Rule):
    """R004 — ``Net``/``Tree``/forest attributes are frozen by convention.

    Algorithms share these objects (and their cached views) freely;
    mutating them outside their defining module silently corrupts every
    other holder.  The rule flags attribute assignment on variables whose
    name marks them as nets/trees/forests (``net``, ``tree``, ``*_net``,
    ``*_tree``, ``forest``, ``steiner``) anywhere except the modules that
    define those classes.  Deliberate tampering in corruption tests must
    carry ``# lint: disable=R004 (reason)``.
    """

    id = "R004"
    title = "mutation of frozen-by-convention core object"
    library_only = False

    DEFINING_MODULES = (
        "core/net.py",
        "core/tree.py",
        "core/partial_forest.py",
        "steiner/bkst.py",
        "steiner/grid_graph.py",
    )
    _BASE = re.compile(r"(?:.*_)?(net|tree|forest|steiner)$")

    def applies_to(self, filename: str) -> bool:
        normalized = filename.replace("\\", "/")
        return not any(normalized.endswith(m) for m in self.DEFINING_MODULES)

    def _base_matches(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return bool(self._BASE.match(node.id))
        if isinstance(node, ast.Attribute):
            return node.attr in ("net", "tree", "forest")
        return False

    def _flag_target(self, target: ast.AST, filename: str) -> Iterator[Violation]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from self._flag_target(element, filename)
        elif isinstance(target, ast.Attribute) and self._base_matches(target.value):
            yield self.violation(
                target,
                filename,
                f"mutates attribute {target.attr!r} of a Net/Tree object "
                "outside its defining module; these are shared and frozen "
                "by convention",
            )

    def check(self, tree: ast.Module, filename: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    yield from self._flag_target(target, filename)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                yield from self._flag_target(node.target, filename)


class BroadExceptRule(Rule):
    """R005 — no bare/broad ``except`` without a justification pragma.

    A blanket handler hides infeasibility errors and genuine bugs alike.
    Where swallowing everything is the point (job isolation, fallbacks),
    annotate with ``# lint: allow-broad-except(reason)``.
    """

    id = "R005"
    title = "broad exception handler"
    library_only = True

    BROAD_NAMES = frozenset({"Exception", "BaseException"})

    def _is_broad(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self.BROAD_NAMES
        if isinstance(node, ast.Attribute):
            return node.attr in self.BROAD_NAMES
        if isinstance(node, ast.Tuple):
            return any(self._is_broad(element) for element in node.elts)
        return False

    def check(self, tree: ast.Module, filename: str) -> Iterator[Violation]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None or self._is_broad(node.type):
                label = "bare except" if node.type is None else "broad except"
                yield self.violation(
                    node,
                    filename,
                    f"{label}: catch a specific exception or annotate with "
                    "`# lint: allow-broad-except(reason)`",
                )


class WallClockRule(Rule):
    """R006 — durations and deadlines must use ``time.monotonic()``.

    ``time.time()`` follows the wall clock, which NTP and the operator
    can step backwards or forwards at any moment; a deadline or elapsed
    measurement built on it can fire immediately, never, or go negative.
    The runtime budget layer (:mod:`repro.runtime.budget`) is built on
    ``time.monotonic()``, and library code measuring spans already uses
    ``perf_counter``; this rule keeps it that way.  Code that genuinely
    needs calendar time (log timestamps, file names) should annotate
    with ``# lint: disable=R006 (reason)``.
    """

    id = "R006"
    title = "wall-clock time.time() used for duration/deadline"
    library_only = True

    def check(self, tree: ast.Module, filename: str) -> Iterator[Violation]:
        time_aliases: Set[str] = set()
        direct_aliases: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "time":
                        time_aliases.add(alias.asname or "time")
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name == "time":
                        direct_aliases.add(alias.asname or "time")
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            chain = _dotted_chain(node.func)
            flagged = (
                len(chain) == 2
                and chain[0] in time_aliases
                and chain[1] == "time"
            ) or (len(chain) == 1 and chain[0] in direct_aliases)
            if flagged:
                yield self.violation(
                    node,
                    filename,
                    "time.time() is wall-clock and can step backwards: use "
                    "time.monotonic() for deadlines/durations (or "
                    "time.perf_counter() for fine timing); calendar "
                    "timestamps need `# lint: disable=R006 (reason)`",
                )


ALL_RULES: Sequence[Rule] = (
    UnseededRandomRule(),
    FloatEqualityRule(),
    RegistryPicklableRule(),
    FrozenCoreObjectsRule(),
    BroadExceptRule(),
    WallClockRule(),
)
