"""``repro-lint`` — the project's two-phase static analysis gate.

Phase 1 runs the file-local AST rules of :mod:`repro.devtools.rules`
(R001-R006) over every Python file, optionally across a process pool
(``--jobs N``).  Phase 2 builds the whole-program index of
:mod:`repro.devtools.project` over the ``repro`` package and runs the
cross-module rules of :mod:`repro.devtools.xrules` (R101-R105) on it.
Three entry points share this module:

* the console script ``repro-lint``,
* ``python -m repro.devtools.lint``,
* the CLI subcommand ``repro-cli lint``.

Output formats (``--format``): ``text`` (default,
``path:line:col: RXXX message`` lines), ``json`` (versioned document
with a summary), and ``sarif`` (SARIF 2.1.0 for GitHub code scanning).
``--output FILE`` redirects the rendered document.

Baseline: with ``--baseline FILE`` (default: the committed
``src/repro/devtools/lint_baseline.json`` when present) known
violations are absorbed and only *new* findings fail the run —
``--update-baseline`` rewrites the file from the current findings.
``--no-baseline`` shows everything.

Suppression pragmas
-------------------
``# lint: disable=R00X`` / ``# lint: disable=R10X`` (optionally with a
parenthesised reason)
    suppresses the named rule(s) on that physical line, on the whole
    multi-line statement the pragma trails, or on the line below when
    placed on its own line.
``# lint: disable-file=R004``
    suppresses the rule(s) for the whole file.
``# lint: allow-broad-except(reason)``
    the R005-specific pragma; the reason is mandatory — an empty one
    leaves the violation standing.

Directories named ``lint_fixtures`` are skipped by the file walker: they
hold deliberately broken modules the linter's own test suite checks the
rules against.
"""

from __future__ import annotations

import argparse
import ast
import json
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.devtools.rules import (
    ALL_RULES,
    Rule,
    Suppressions,
    Violation,
    collect_suppressions,
)

__all__ = [
    "Suppressions",
    "collect_suppressions",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "run_paths",
    "collect_file_violations",
    "main",
]

EXCLUDED_DIR_NAMES = frozenset(
    {
        ".git",
        "__pycache__",
        ".hypothesis",
        ".pytest_cache",
        "build",
        "dist",
        "results",
        "lint_fixtures",
    }
)

DEFAULT_PATHS = ["src", "tests", "benchmarks"]
BASELINE_FILENAME = "lint_baseline.json"


def lint_source(
    source: str,
    filename: str,
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
) -> List[Violation]:
    """Lint one source string; ``filename`` drives per-rule scoping."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Violation(
                path=filename,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="R000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    suppressions = collect_suppressions(source, tree)
    violations: List[Violation] = []
    for rule in rules if rules is not None else ALL_RULES:
        if respect_scope and not rule.applies_to(filename):
            continue
        for violation in rule.check(tree, filename):
            if not suppressions.suppressed(violation.rule, violation.line):
                violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def lint_file(
    path: Path, rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), rules=rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, skipping excluded directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in EXCLUDED_DIR_NAMES for part in candidate.parts):
                continue
            yield candidate


def _lint_file_task(payload: Tuple[str, Optional[Tuple[str, ...]]]) -> List[Violation]:
    """Process-pool work unit: lint one file under a rule-id selection."""
    path, rule_ids = payload
    rules: Optional[Sequence[Rule]] = None
    if rule_ids is not None:
        rules = [rule for rule in ALL_RULES if rule.id in rule_ids]
    return lint_file(Path(path), rules=rules)


def collect_file_violations(
    files: Sequence[Path],
    rules: Optional[Sequence[Rule]] = None,
    jobs: int = 1,
) -> List[Violation]:
    """Phase 1 over ``files``; ``jobs > 1`` fans out per-file work.

    Files are independent, so the pool needs no coordination; results
    come back in submission order and the output is identical to the
    serial pass.
    """
    if jobs <= 1 or len(files) < 2:
        violations: List[Violation] = []
        for path in files:
            violations.extend(lint_file(path, rules=rules))
        return violations
    rule_ids: Optional[Tuple[str, ...]] = None
    if rules is not None:
        rule_ids = tuple(rule.id for rule in rules)
    payloads = [(str(path), rule_ids) for path in files]
    violations = []
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        for result in pool.map(_lint_file_task, payloads, chunksize=8):
            violations.extend(result)
    return violations


def run_paths(
    paths: Iterable[str],
    rules: Optional[Sequence[Rule]] = None,
    jobs: int = 1,
) -> List[Violation]:
    """Lint every Python file under ``paths`` (file-local rules only)."""
    return collect_file_violations(list(iter_python_files(paths)), rules, jobs)


# ----------------------------------------------------------------------
# Rule selection across both phases
# ----------------------------------------------------------------------


def _cross_rules():
    from repro.devtools.xrules import CROSS_RULES

    return CROSS_RULES


def _catalogue() -> List[Tuple[str, str, str, str]]:
    """``(id, title, kind, scope)`` for every rule of both phases."""
    rows = []
    for rule in ALL_RULES:
        scope = "src/repro only" if rule.library_only else "all linted trees"
        rows.append((rule.id, rule.title, "file-local", scope))
    for rule in _cross_rules():
        rows.append((rule.id, rule.title, "cross-module", "src/repro"))
    return rows


def _list_rules() -> str:
    rows = _catalogue()
    width = max(len(title) for _, title, _, _ in rows)
    return "\n".join(
        f"{rule_id}  {title:<{width}}  [{kind}; {scope}]"
        for rule_id, title, kind, scope in rows
    )


def _rule_meta() -> List[Tuple[str, str, str]]:
    """SARIF rule metadata: id, title, first docstring paragraph."""
    meta: List[Tuple[str, str, str]] = [
        ("R000", "syntax error", "The file does not parse.")
    ]
    for rule in list(ALL_RULES) + list(_cross_rules()):
        doc = (type(rule).__doc__ or rule.title or "").strip()
        first = doc.split("\n\n")[0].replace("\n", " ").strip()
        meta.append((rule.id, rule.title, first))
    return meta


def _select_rules(
    selection: Optional[str],
) -> Tuple[Optional[List[Rule]], Optional[List], Optional[str]]:
    """Resolve ``--rules`` into per-phase rule lists.

    Returns ``(file_rules, cross_rules, error)``; ``None`` lists mean
    "all rules of that phase".
    """
    if not selection:
        return None, None, None
    wanted = {r.strip().upper() for r in selection.split(",") if r.strip()}
    known_file = {rule.id: rule for rule in ALL_RULES}
    known_cross = {rule.id: rule for rule in _cross_rules()}
    unknown = wanted - set(known_file) - set(known_cross)
    if unknown:
        return None, None, f"unknown rule(s): {sorted(unknown)}"
    file_rules = [known_file[i] for i in sorted(wanted & set(known_file))]
    cross_rules = [known_cross[i] for i in sorted(wanted & set(known_cross))]
    return file_rules, cross_rules, None


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------


def _default_baseline_path(project_root: Optional[Path]) -> Optional[Path]:
    if project_root is None:
        return None
    candidate = project_root / "devtools" / BASELINE_FILENAME
    return candidate if candidate.is_file() else None


def _emit(document: str, output: Optional[str]) -> None:
    if output:
        Path(output).write_text(document + "\n", encoding="utf-8")
    else:
        print(document)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis for the repro library "
        "(file-local rules R001-R006 plus cross-module rules R101-R105; "
        "see docs/development.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=DEFAULT_PATHS,
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--select",
        "--rules",
        dest="select",
        default=None,
        help="comma-separated rule ids to run, e.g. R101,R103 (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    parser.add_argument(
        "--format",
        dest="format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        default=None,
        help="write the rendered output to this file instead of stdout",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process-pool width for the per-file phase (default: 1, serial)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="baseline file of known violations (default: the committed "
        "src/repro/devtools/lint_baseline.json when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file and report every violation",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline file from the current findings and exit 0",
    )
    parser.add_argument(
        "--no-cross",
        action="store_true",
        help="skip phase 2 (the cross-module rules R101-R105)",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    file_rules, cross_rules, error = _select_rules(args.select)
    if error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    run_file_phase = file_rules is None or bool(file_rules)
    run_cross_phase = (cross_rules is None or bool(cross_rules)) and not args.no_cross
    if args.select:
        # An explicit selection runs exactly the named rules.
        run_file_phase = bool(file_rules)
        run_cross_phase = bool(cross_rules) and not args.no_cross

    try:
        files = list(iter_python_files(args.paths))
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    violations: List[Violation] = []
    if run_file_phase:
        started = time.perf_counter()
        violations.extend(
            collect_file_violations(files, file_rules, jobs=max(args.jobs, 1))
        )
        if args.jobs > 1:
            elapsed = max(time.perf_counter() - started, 1e-9)
            print(
                f"repro-lint: phase 1 checked {len(files)} files in "
                f"{elapsed:.2f}s ({len(files) / elapsed:.0f} files/s, "
                f"jobs={args.jobs})",
                file=sys.stderr,
            )

    from repro.devtools.project import build_index, find_project_root

    project_root = find_project_root(args.paths)
    if run_cross_phase and project_root is not None:
        from repro.devtools.xrules import run_cross_rules

        index = build_index(project_root)
        violations.extend(run_cross_rules(index, cross_rules))

    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))

    from repro.devtools import reporting

    baseline_path: Optional[Path] = (
        Path(args.baseline) if args.baseline else _default_baseline_path(project_root)
    )
    if args.update_baseline:
        target = baseline_path
        if target is None:
            if project_root is None:
                print(
                    "error: --update-baseline needs --baseline PATH or a "
                    "discoverable project root",
                    file=sys.stderr,
                )
                return 2
            target = project_root / "devtools" / BASELINE_FILENAME
        reporting.write_baseline(violations, target)
        print(
            f"repro-lint: wrote baseline with {len(violations)} "
            f"violation(s) to {target}",
            file=sys.stderr,
        )
        return 0

    baseline = None
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = reporting.load_baseline(baseline_path)
        except (OSError, ValueError, KeyError) as exc:
            print(f"error: unreadable baseline {baseline_path}: {exc}", file=sys.stderr)
            return 2
    new, baselined = reporting.split_by_baseline(violations, baseline)

    if args.format == "json":
        _emit(reporting.violations_to_json(new, baselined, len(files)), args.output)
    elif args.format == "sarif":
        sarif = reporting.violations_to_sarif(new, _rule_meta())
        _emit(json.dumps(sarif, indent=2), args.output)
    else:
        lines = "\n".join(v.render() for v in new)
        if lines:
            _emit(lines, args.output)
        elif args.output:
            _emit("", args.output)
    if new or baselined:
        summary = f"repro-lint: {len(new)} violation(s)"
        if baseline is not None:
            summary += f" ({len(baselined)} baselined)"
        print(summary, file=sys.stderr)
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main())
