"""``repro-lint`` — the project's static analysis gate.

Runs the AST rules of :mod:`repro.devtools.rules` over Python trees and
reports violations as ``path:line:col: R00X message`` lines, exiting
non-zero when anything fires.  Three entry points share this module:

* the console script ``repro-lint``,
* ``python -m repro.devtools.lint``,
* the CLI subcommand ``repro-cli lint``.

Suppression pragmas
-------------------
``# lint: disable=R002`` (optionally with a parenthesised reason)
    suppresses the named rule(s) on that physical line or the line below
    when placed on its own line.
``# lint: disable-file=R004``
    suppresses the rule(s) for the whole file.
``# lint: allow-broad-except(reason)``
    the R005-specific pragma; the reason is mandatory — an empty one
    leaves the violation standing.

Directories named ``lint_fixtures`` are skipped by the file walker: they
hold deliberately broken modules the linter's own test suite checks the
rules against.
"""

from __future__ import annotations

import argparse
import ast
import io
import re
import sys
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.devtools.rules import ALL_RULES, Rule, Violation

__all__ = [
    "Suppressions",
    "collect_suppressions",
    "iter_python_files",
    "lint_source",
    "lint_file",
    "run_paths",
    "main",
]

EXCLUDED_DIR_NAMES = frozenset(
    {
        ".git",
        "__pycache__",
        ".hypothesis",
        ".pytest_cache",
        "build",
        "dist",
        "results",
        "lint_fixtures",
    }
)

_DISABLE_RE = re.compile(
    r"#\s*lint:\s*(disable|disable-file)\s*=\s*([A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)"
)
_BROAD_EXCEPT_RE = re.compile(r"#\s*lint:\s*allow-broad-except\(([^)]*)\)")


@dataclass
class Suppressions:
    """Which rules are silenced where, parsed from a file's comments."""

    file_level: Set[str] = field(default_factory=set)
    by_line: Dict[int, Set[str]] = field(default_factory=dict)

    def add(self, line: int, rule: str) -> None:
        self.by_line.setdefault(line, set()).add(rule)

    def suppressed(self, rule: str, line: int) -> bool:
        if rule in self.file_level:
            return True
        if rule in self.by_line.get(line, ()):
            return True
        # A pragma on its own line guards the statement below it.
        return rule in self.by_line.get(line - 1, ())


def collect_suppressions(source: str) -> Suppressions:
    """Parse the ``# lint:`` pragmas out of ``source``'s comments."""
    suppressions = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        line = token.start[0]
        for match in _DISABLE_RE.finditer(token.string):
            rules = {r.strip() for r in match.group(2).split(",")}
            if match.group(1) == "disable-file":
                suppressions.file_level.update(rules)
            else:
                for rule in rules:
                    suppressions.add(line, rule)
        for match in _BROAD_EXCEPT_RE.finditer(token.string):
            if match.group(1).strip():
                suppressions.add(line, "R005")
    return suppressions


def lint_source(
    source: str,
    filename: str,
    rules: Optional[Sequence[Rule]] = None,
    respect_scope: bool = True,
) -> List[Violation]:
    """Lint one source string; ``filename`` drives per-rule scoping."""
    try:
        tree = ast.parse(source, filename=filename)
    except SyntaxError as exc:
        return [
            Violation(
                path=filename,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                rule="R000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    suppressions = collect_suppressions(source)
    violations: List[Violation] = []
    for rule in rules if rules is not None else ALL_RULES:
        if respect_scope and not rule.applies_to(filename):
            continue
        for violation in rule.check(tree, filename):
            if not suppressions.suppressed(violation.rule, violation.line):
                violations.append(violation)
    violations.sort(key=lambda v: (v.line, v.col, v.rule))
    return violations


def lint_file(
    path: Path, rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    source = path.read_text(encoding="utf-8")
    return lint_source(source, str(path), rules=rules)


def iter_python_files(paths: Iterable[str]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths``, skipping excluded directories."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        if not path.is_dir():
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for candidate in sorted(path.rglob("*.py")):
            if any(part in EXCLUDED_DIR_NAMES for part in candidate.parts):
                continue
            yield candidate


def run_paths(
    paths: Iterable[str], rules: Optional[Sequence[Rule]] = None
) -> List[Violation]:
    """Lint every Python file under ``paths`` and return all violations."""
    violations: List[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(lint_file(path, rules=rules))
    return violations


def _list_rules() -> str:
    lines = []
    for rule in ALL_RULES:
        scope = "src/repro only" if rule.library_only else "all linted trees"
        lines.append(f"{rule.id}  {rule.title}  [{scope}]")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description="Project-specific static analysis for the repro library "
        "(rules R001-R006; see docs/development.md).",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    parser.add_argument(
        "--select",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalogue"
    )
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_list_rules())
        return 0
    rules: Optional[Sequence[Rule]] = None
    if args.select:
        wanted = {r.strip().upper() for r in args.select.split(",") if r.strip()}
        unknown = wanted - {rule.id for rule in ALL_RULES}
        if unknown:
            print(f"error: unknown rule(s): {sorted(unknown)}", file=sys.stderr)
            return 2
        rules = [rule for rule in ALL_RULES if rule.id in wanted]
    try:
        violations = run_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"repro-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
