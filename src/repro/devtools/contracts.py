"""Runtime post-condition contracts for the algorithm registry.

Setting ``REPRO_CHECK_INVARIANTS=1`` turns every algorithm dispatched
through :func:`repro.analysis.runners.get_runner` (and therefore
``run``/``run_many``/the batch engine) into an instrumented version that
re-validates its own output with the independent checkers of
:mod:`repro.analysis.validation`:

* the tree spans all terminals (connectivity recomputed from the edges),
* the longest source path stays within ``(1 + eps) * R`` for every
  algorithm that promises the bound (:data:`BOUND_GUARANTEED`),
* the all-pairs path matrix is symmetric with a zero diagonal — the
  fully-merged analogue of ``PartialForest.P``'s Figure 3 invariant,
* the cached cost equals the sum of edge lengths.

A violation raises :class:`ContractViolationError` at the call site that
produced the bad tree, instead of surfacing later as a wrong table cell.
With the variable unset the dispatch path is untouched (``get_runner``
returns the raw registry entry), so the mode is free when off.
"""

from __future__ import annotations

import functools
import math
import os
from typing import Any, Callable, Dict, List, Optional

from repro.core.exceptions import ReproError

__all__ = [
    "ENV_VAR",
    "BOUND_GUARANTEED",
    "UNBOUNDED",
    "ContractViolationError",
    "contracts_enabled",
    "check_algorithm_output",
    "checked",
    "checked_algorithms",
]

ENV_VAR = "REPRO_CHECK_INVARIANTS"
_TRUTHY = frozenset({"1", "true", "yes", "on"})

BOUND_GUARANTEED = frozenset(
    {
        "spt",
        "bkrus",
        "bkrus_np",
        "bkrus_per_sink",
        "bprim",
        "brbc",
        "bkh2",
        "bkex",
        "bmst_g",
        "bkst",
        "bkst_np",
        "bkst_obstacles",
    }
)
"""Algorithms whose output must satisfy ``path <= (1 + eps) * R``.

``R`` is the net's geometric radius, except for trees that carry a
``bound_radius`` override (``bkst_obstacles``), whose bound is checked
against the costed shortest-path radius instead — see
:meth:`repro.steiner.bkst.SteinerTree.satisfies_bound`."""

UNBOUNDED = frozenset({"mst", "prim_dijkstra"})
"""Unbounded anchors: their trees are still structurally validated, but
against an infinite bound.

Together with :data:`BOUND_GUARANTEED` this must classify every
``ALGORITHMS`` entry exactly once — the cross-module lint rule R101
enforces the partition, so a new registry entry fails CI until it is
added to one of the two sets.
"""


class ContractViolationError(ReproError):
    """An algorithm's output failed its post-condition checks."""

    def __init__(self, algorithm: str, problems: List[str]) -> None:
        self.algorithm = algorithm
        self.problems = list(problems)
        super().__init__(
            f"contract violation in {algorithm!r}: " + "; ".join(self.problems)
        )


def contracts_enabled() -> bool:
    """True when ``REPRO_CHECK_INVARIANTS`` is set to a truthy value."""
    return os.environ.get(ENV_VAR, "").strip().lower() in _TRUTHY


def check_algorithm_output(
    algorithm: str, net: Any, eps: float, tree: Any
) -> List[str]:
    """All post-condition problems with ``tree`` (empty list = ok)."""
    # Imported lazily: contracts sit below the analysis layer in the
    # import graph and must not create a cycle at module load.
    from repro.analysis.validation import check_tree

    effective_eps = eps if algorithm in BOUND_GUARANTEED else math.inf
    return check_tree(tree, effective_eps)


def checked(
    func: Callable[..., Any], algorithm: Optional[str] = None
) -> Callable[..., Any]:
    """Wrap ``(net, eps) -> tree`` with post-condition checking.

    The checks only run when :func:`contracts_enabled` is true at call
    time, so a wrapper built once can serve both modes; the off-path
    costs a single environment lookup.
    """
    name = algorithm or getattr(func, "__name__", "<anonymous>")

    @functools.wraps(func)
    def wrapper(net: Any, eps: float, *args: Any, **kwargs: Any) -> Any:
        tree = func(net, eps, *args, **kwargs)
        if contracts_enabled():
            problems = check_algorithm_output(name, net, eps, tree)
            if problems:
                raise ContractViolationError(name, problems)
        return tree

    wrapper.__contract_algorithm__ = name  # type: ignore[attr-defined]
    return wrapper


def checked_algorithms() -> Dict[str, Callable[..., Any]]:
    """The full registry with every entry wrapped by :func:`checked`.

    For tests and benchmarks that want instrumented runners regardless
    of the environment variable, pair with a monkeypatched ``ENV_VAR``
    or call the wrappers under ``REPRO_CHECK_INVARIANTS=1``.
    """
    from repro.analysis.runners import ALGORITHMS

    return {name: checked(func, algorithm=name) for name, func in ALGORITHMS.items()}
