"""Cross-module lint rules R101-R105 over the project index.

Where R001-R006 (:mod:`repro.devtools.rules`) police one file at a time,
these rules compare *extraction sets* pulled from different modules by
:mod:`repro.devtools.project` — the conventions that hold the subsystems
together and that no single-file pass can see:

* **R101** — the algorithm registry, the contract classification
  (``BOUND_GUARANTEED``/``UNBOUNDED``) and the backend canonical-name
  map must agree exactly: no orphans on any side.
* **R102** — every counter the code emits is declared in the typed
  catalogue, and every declared (non-prefix) counter is emitted
  somewhere: no rogue and no dead counters.
* **R103** — every loop reachable from a registry algorithm must spend a
  ``Budget.checkpoint()`` (directly or through a callee), keeping every
  algorithm deadline-cooperative by construction.
* **R104** — every ``REPRO_*`` environment read goes through the
  declared-knobs table (:mod:`repro.core.knobs`), so knobs are
  documented and provably cross the fork boundary.
* **R105** — public functions in ``*_np.py`` backend modules mirror the
  signatures of their reference twins, keeping the backend seam honest.

All rules respect the standard pragmas on the violation's line
(``# lint: disable=R103 (reason)``); see ``docs/development.md``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Sequence, Set

from repro.devtools.project import (
    FunctionInfo,
    ModuleInfo,
    ProjectIndex,
    SourceRef,
    is_checkpoint_call,
)
from repro.devtools.rules import Violation

__all__ = ["CrossRule", "CROSS_RULES", "run_cross_rules"]


class CrossRule:
    """Base class for whole-program rules: check a :class:`ProjectIndex`."""

    id: str = "R100"
    title: str = ""

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        raise NotImplementedError

    def violation(self, ref: SourceRef, message: str) -> Violation:
        return Violation(
            path=ref.path, line=ref.line, col=ref.col, rule=self.id,
            message=message,
        )


class RegistryContractDriftRule(CrossRule):
    """R101 — registry, contract table and canonical map must agree.

    Every ``ALGORITHMS`` entry must be classified (``BOUND_GUARANTEED``
    or ``UNBOUNDED``), every backend variant (``*_np``) must be known to
    ``core/backends.canonical_algorithm``, and — vice versa — every
    classified or canonical name must exist in the registry.  A new
    algorithm from the related literature cannot land half-wired: the
    drift is caught before the first test runs.
    """

    id = "R101"
    title = "registry/contract/canonical-map drift"

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        if not index.algorithms:
            return
        classified = set(index.bound_guaranteed) | set(index.unbounded)
        for name in sorted(index.algorithms):
            entry = index.algorithms[name]
            if name not in classified:
                yield self.violation(
                    entry.ref,
                    f"registry algorithm {name!r} is not classified in "
                    "BOUND_GUARANTEED or UNBOUNDED (devtools/contracts.py); "
                    "every registered algorithm must declare its bound "
                    "contract",
                )
            if name.endswith("_np") and name not in index.canonical:
                yield self.violation(
                    entry.ref,
                    f"backend variant {name!r} has no entry in the "
                    "canonical-name map (core/backends._CANONICAL); result "
                    "store keys would diverge between backends",
                )
        for name in sorted(index.bound_guaranteed):
            if name not in index.algorithms:
                yield self.violation(
                    index.bound_guaranteed[name],
                    f"BOUND_GUARANTEED entry {name!r} is not a registered "
                    "algorithm (orphan contract entry)",
                )
        for name in sorted(index.unbounded):
            if name not in index.algorithms:
                yield self.violation(
                    index.unbounded[name],
                    f"UNBOUNDED entry {name!r} is not a registered "
                    "algorithm (orphan contract entry)",
                )
        for name in sorted(set(index.bound_guaranteed) & set(index.unbounded)):
            yield self.violation(
                index.unbounded[name],
                f"{name!r} is classified both BOUND_GUARANTEED and "
                "UNBOUNDED; pick one",
            )
        for name in sorted(index.canonical):
            target, ref = index.canonical[name]
            if name not in index.algorithms:
                yield self.violation(
                    ref,
                    f"canonical-name map key {name!r} is not a registered "
                    "algorithm",
                )
            if target not in index.algorithms:
                yield self.violation(
                    ref,
                    f"canonical-name map target {target!r} (for {name!r}) "
                    "is not a registered algorithm",
                )


class CounterHygieneRule(CrossRule):
    """R102 — emitted counters and the typed catalogue must agree.

    A counter bumped under a name the catalogue does not declare is
    invisible to analysis code and docs; a declared counter nothing
    emits is dead weight that misleads both.  Dynamic families
    (f-string names) must match a declared ``prefix=True`` family.
    """

    id = "R102"
    title = "counter emitted/declared drift"

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        if not index.counters:
            return
        prefixes = [
            decl.name for decl in index.counters.values() if decl.prefix
        ]

        def declared(name: str, dynamic: bool) -> bool:
            if not dynamic and name in index.counters:
                return not index.counters[name].prefix
            return any(name.startswith(prefix) for prefix in prefixes)

        for emission in index.counter_emissions:
            if not declared(emission.name, emission.dynamic):
                shape = "dynamic counter family" if emission.dynamic else "counter"
                yield self.violation(
                    emission.ref,
                    f"{shape} {emission.name!r} is not declared in the "
                    "counter catalogue (observability/counters.py); declare "
                    "a CounterSpec or fix the name",
                )
        emitted_names = {e.name for e in index.counter_emissions}
        for name in sorted(index.counters):
            decl = index.counters[name]
            if decl.prefix:
                used = any(e.name.startswith(name) for e in index.counter_emissions)
            else:
                used = name in emitted_names
            if not used:
                yield self.violation(
                    decl.ref,
                    f"declared counter {name!r} is never emitted anywhere "
                    "in the library (dead counter); remove the CounterSpec "
                    "or emit it",
                )


class BudgetCheckpointRule(CrossRule):
    """R103 — loops reachable from registry algorithms must checkpoint.

    The deadline/budget runtime only works if every hot loop spends
    ``Budget.checkpoint()`` often enough to notice exhaustion; a single
    checkpoint-free loop makes its whole algorithm non-cooperative.  The
    rule walks every function reachable from an ``ALGORITHMS`` entry and
    flags ``for``/``while`` loops with no checkpoint in their body or in
    any (statically resolvable) callee.  Genuinely bounded or exempt
    loops take ``# lint: disable=R103 (reason)`` on the loop line.
    """

    id = "R103"
    title = "checkpoint-free loop reachable from the registry"

    _LOOPS = (ast.For, ast.AsyncFor, ast.While)
    _SKIP = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        if not index.algorithms:
            return
        for qualname in sorted(index.reachable):
            func = index.function_by_qualname(qualname)
            if func is None:
                continue
            module = index.modules[func.module]
            yield from self._scan(index, module, func, func.node)

    def _scan(
        self,
        index: ProjectIndex,
        module: ModuleInfo,
        func: FunctionInfo,
        node: ast.AST,
    ) -> Iterator[Violation]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, self._SKIP):
                continue  # nested defs run on their own call paths
            if isinstance(child, self._LOOPS):
                if self._covered(index, module, func, child):
                    # The loop checkpoints; nested loops still need to.
                    yield from self._scan(index, module, func, child)
                else:
                    kind = "while" if isinstance(child, ast.While) else "for"
                    yield self.violation(
                        SourceRef(
                            module=module.name,
                            path=module.path,
                            line=child.lineno,
                            col=child.col_offset + 1,
                        ),
                        f"{kind} loop in {func.qualname} (reachable from "
                        "the algorithm registry) never calls "
                        "Budget.checkpoint(); add a checkpoint or annotate "
                        "with `# lint: disable=R103 (reason)`",
                    )
                    # Do not descend: one finding per uncovered loop nest.
            else:
                yield from self._scan(index, module, func, child)

    @staticmethod
    def _covered(
        index: ProjectIndex,
        module: ModuleInfo,
        func: FunctionInfo,
        loop: ast.AST,
    ) -> bool:
        for node in ast.walk(loop):
            if not isinstance(node, ast.Call):
                continue
            if is_checkpoint_call(node):
                return True
            targets = index.resolve_call_targets(module, func, node)
            if any(target in index.checkpointing for target in targets):
                return True
        return False


class EnvKnobRule(CrossRule):
    """R104 — ``REPRO_*`` reads must go through the declared-knobs table.

    Environment knobs cross the fork boundary into batch workers via the
    inherited environment; an undeclared knob is undocumented, invisible
    to ``repro-lint --list-rules``-style tooling, and easy to misspell
    silently.  Declaring it in :mod:`repro.core.knobs` is one line.
    """

    id = "R104"
    title = "undeclared REPRO_* environment knob"

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        for read in index.env_reads:
            if read.name not in index.knobs:
                yield self.violation(
                    read.ref,
                    f"environment knob {read.name!r} is not declared in the "
                    "knobs table (repro/core/knobs.py); declare it so it is "
                    "documented and provably crosses the fork boundary",
                )
        used = {read.name for read in index.env_reads}
        for name in sorted(index.knobs):
            if name not in used:
                yield self.violation(
                    index.knobs[name].ref,
                    f"declared knob {name!r} is never read anywhere in the "
                    "library (dead knob); remove the declaration or wire it "
                    "up",
                )


class BackendParityRule(CrossRule):
    """R105 — ``*_np`` backend modules mirror their reference signatures.

    The multi-backend registry only stays drop-in if ``bkrus_np`` keeps
    exactly ``bkrus``'s signature (argument names, order, defaults).
    Public functions of a ``X_np`` module are matched to ``X``'s
    function of the same name with the ``_np`` segment removed; np-only
    helpers with no reference twin are exempt.
    """

    id = "R105"
    title = "backend signature drift vs reference module"

    def check(self, index: ProjectIndex) -> Iterator[Violation]:
        for name in sorted(index.modules):
            if not name.endswith("_np"):
                continue
            module = index.modules[name]
            reference = index.modules.get(name[: -len("_np")])
            if reference is None:
                continue
            for local, func in sorted(module.functions.items()):
                if func.class_name is not None or func.name.startswith("_"):
                    continue
                mirror_name = func.name.replace("_np", "", 1)
                mirror = reference.functions.get(mirror_name)
                if mirror is None or mirror.class_name is not None:
                    continue
                ours = _signature_text(func.node)
                theirs = _signature_text(mirror.node)
                if ours != theirs:
                    yield self.violation(
                        SourceRef(
                            module=module.name,
                            path=module.path,
                            line=func.node.lineno,
                            col=func.node.col_offset + 1,
                        ),
                        f"signature of {func.name}({ours}) drifts from its "
                        f"reference twin {reference.name}.{mirror_name}"
                        f"({theirs}); backend variants must mirror the "
                        "reference signature exactly",
                    )


def _signature_text(node: ast.AST) -> str:
    """Canonical ``name=default`` signature text, annotations ignored."""
    if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
        return ""
    args = node.args
    parts: List[str] = []
    positional = list(args.posonlyargs) + list(args.args)
    pad: List[Optional[ast.expr]] = [None] * (
        len(positional) - len(args.defaults)
    ) + list(args.defaults)
    for arg, default in zip(positional, pad):
        if default is None:
            parts.append(arg.arg)
        else:
            parts.append(f"{arg.arg}={ast.unparse(default)}")
    if args.vararg is not None:
        parts.append(f"*{args.vararg.arg}")
    elif args.kwonlyargs:
        parts.append("*")
    for arg, default in zip(args.kwonlyargs, args.kw_defaults):
        if default is None:
            parts.append(arg.arg)
        else:
            parts.append(f"{arg.arg}={ast.unparse(default)}")
    if args.kwarg is not None:
        parts.append(f"**{args.kwarg.arg}")
    return ", ".join(parts)


CROSS_RULES: Sequence[CrossRule] = (
    RegistryContractDriftRule(),
    CounterHygieneRule(),
    BudgetCheckpointRule(),
    EnvKnobRule(),
    BackendParityRule(),
)


def run_cross_rules(
    index: ProjectIndex, rules: Optional[Sequence[CrossRule]] = None
) -> List[Violation]:
    """Run phase 2 over ``index``, honouring per-module pragmas."""
    violations: List[Violation] = []
    for rule in rules if rules is not None else CROSS_RULES:
        for violation in rule.check(index):
            module = index.modules_by_path.get(violation.path)
            if module is not None and module.suppressions.suppressed(
                violation.rule, violation.line
            ):
                continue
            violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations
