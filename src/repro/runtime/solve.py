"""Anytime solving: budgets, fallback chains, partial results.

This module is the policy layer above :mod:`repro.runtime.budget`.  The
budget gives a single solver a deadline; real deployments need the next
step — *what to do when the deadline hits*.  Following the anytime
framing of Cong–Kahng–Robins (BRBC's tunable cost/radius knob), the
answer here is a declarative quality ladder: try the exact method under
the budget, fall down to successively cheaper heuristics, and always
come back with a feasible tree plus honest metadata about how it was
obtained.

* :class:`FallbackPolicy` — the ladder (``bmst_g -> bkh2 -> bkrus``),
  plus the shared deadline and per-attempt node cap.  Plain frozen
  dataclass: picklable, so batch job specs can carry one across the
  worker boundary.
* :class:`PartialResult` — tree + ``exhausted`` flag + which ladder
  entry produced it + per-attempt outcomes.
* :func:`run_with_budget` — one solver under one budget, returned as a
  :class:`PartialResult`.
* :func:`solve` — the ladder walker used by ``repro-cli solve`` and the
  batch engine.

The final ladder entry runs **without** a deadline: the whole point of
ending a chain with a near-linear heuristic (BKRUS, BPRIM) is that the
safety net must be allowed to finish, otherwise an aggressive deadline
could leave the caller with nothing.  Node caps still apply to it.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Tuple

from repro.core.exceptions import (
    AlgorithmLimitError,
    InfeasibleError,
    InvalidParameterError,
)
from repro.core.net import Net
from repro.observability import incr, tracing_active
from repro.runtime.budget import Budget, use_budget

__all__ = [
    "Attempt",
    "FallbackPolicy",
    "PartialResult",
    "default_policy",
    "run_with_budget",
    "solve",
]

#: Conventional quality ladders per exact solver: each step is strictly
#: cheaper and the last step is a near-linear construction that cannot
#: meaningfully exhaust a budget.
DEFAULT_CHAINS = {
    "bmst_g": ("bmst_g", "bkh2", "bkrus"),
    "bkex": ("bkex", "bkh2", "bkrus"),
    "bkh2": ("bkh2", "bkrus"),
    "bkst": ("bkst", "bkrus"),
}


@dataclass(frozen=True)
class FallbackPolicy:
    """A quality ladder with its budget configuration.

    ``chain`` lists registry names in descending quality order; the
    first entry is the preferred algorithm.  ``deadline_seconds`` is the
    **total** wall allowance across the chain (each attempt gets what is
    left), armed when :func:`solve` starts; ``max_nodes`` caps each
    attempt's checkpoints individually.  Frozen and picklable so batch
    ``JobSpec``s can ship one to worker processes.
    """

    chain: Tuple[str, ...]
    deadline_seconds: Optional[float] = None
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.chain:
            raise InvalidParameterError("FallbackPolicy needs a non-empty chain")
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise InvalidParameterError(
                f"deadline_seconds must be >= 0, got {self.deadline_seconds}"
            )
        if self.max_nodes is not None and self.max_nodes < 0:
            raise InvalidParameterError(
                f"max_nodes must be >= 0, got {self.max_nodes}"
            )

    def describe(self) -> str:
        limits = []
        if self.deadline_seconds is not None:
            limits.append(f"deadline={self.deadline_seconds:.6g}s")
        if self.max_nodes is not None:
            limits.append(f"max_nodes={self.max_nodes}")
        suffix = f" [{', '.join(limits)}]" if limits else ""
        return " -> ".join(self.chain) + suffix


def default_policy(
    algorithm: str,
    deadline_seconds: Optional[float] = None,
    max_nodes: Optional[int] = None,
) -> FallbackPolicy:
    """The conventional ladder for ``algorithm`` (itself, when none)."""
    chain = DEFAULT_CHAINS.get(algorithm, (algorithm,))
    return FallbackPolicy(
        chain=chain, deadline_seconds=deadline_seconds, max_nodes=max_nodes
    )


@dataclass(frozen=True)
class Attempt:
    """One ladder step: which algorithm, and how it ended.

    ``outcome`` is ``"ok"`` (finished inside the budget), ``"partial"``
    (returned a feasible incumbent with the budget exhausted),
    ``"skipped"`` (the shared deadline was already spent, so the entry
    was never invoked), or the exception class name that ended the
    attempt without a tree (``"BudgetExhaustedError"``,
    ``"AlgorithmLimitError"``, ...).
    """

    algorithm: str
    outcome: str
    checkpoints: int = 0
    elapsed_seconds: float = 0.0


@dataclass(frozen=True)
class PartialResult:
    """The anytime contract: a tree plus honesty about how it was won.

    ``tree`` is always feasible for the requested bound when present.
    ``exhausted`` is True when any budget tripped along the way — either
    the producing solver returned its best-so-far incumbent, or an
    earlier ladder entry ran out and a fallback produced the tree.
    """

    algorithm: str
    """The requested (first-chain) algorithm."""
    produced_by: str
    """The ladder entry whose tree this is."""
    tree: object
    exhausted: bool
    attempts: Tuple[Attempt, ...] = field(default_factory=tuple)
    checkpoints: int = 0
    """Checkpoints spent across every attempt."""
    elapsed_seconds: float = 0.0

    @property
    def fallback_used(self) -> Optional[str]:
        """The producing entry when it differs from the request, else None."""
        if self.produced_by != self.algorithm:
            return self.produced_by
        return None


def run_with_budget(
    algorithm: str,
    net: Net,
    eps: float,
    budget: Budget,
) -> PartialResult:
    """Run one registry algorithm under ``budget``.

    Returns a :class:`PartialResult` whose ``exhausted`` flag reports
    whether the solver finished or handed back its best-so-far
    incumbent.  Raises
    :class:`~repro.core.exceptions.BudgetExhaustedError` when the
    solver had nothing feasible to return (e.g. BMST_G's enumeration
    never reaches a feasible tree before the deadline).
    """
    from repro.analysis.runners import get_runner

    runner = get_runner(algorithm)
    with use_budget(budget):
        tree = runner(net, eps)
    _publish_budget(budget)
    return PartialResult(
        algorithm=algorithm,
        produced_by=algorithm,
        tree=tree,
        exhausted=budget.exhausted,
        attempts=(
            Attempt(
                algorithm=algorithm,
                outcome="partial" if budget.exhausted else "ok",
                checkpoints=budget.checkpoints,
                elapsed_seconds=budget.elapsed_seconds(),
            ),
        ),
        checkpoints=budget.checkpoints,
        elapsed_seconds=budget.elapsed_seconds(),
    )


def _publish_budget(budget: Budget) -> None:
    """Emit the budget's counters onto the active trace session."""
    if not tracing_active():
        return
    incr("budget.checkpoints", budget.checkpoints)
    if budget.exhausted:
        incr("budget.exhausted")


def solve(
    net: Net,
    eps: float,
    policy: FallbackPolicy,
    clock: Callable[[], float] = time.monotonic,
) -> PartialResult:
    """Walk the fallback ladder until some entry yields a feasible tree.

    Every entry except the last runs under a :class:`Budget` holding
    the *remaining* share of ``policy.deadline_seconds`` plus the
    per-attempt ``policy.max_nodes`` cap; the final entry keeps the node
    cap but drops the deadline so the safety net always completes.  Once
    the shared deadline is spent, remaining non-final entries are not
    invoked at all — each is recorded as ``Attempt(outcome="skipped")``
    and the walk jumps straight to the safety net, instead of paying
    every rung's pre-checkpoint setup under a zero-second budget.  An
    entry that returns a tree ends the walk (anytime solvers return
    their best-so-far incumbent on exhaustion, which is already the
    right ladder answer); an entry that raises
    ``BudgetExhaustedError``/``AlgorithmLimitError``/``InfeasibleError``
    hands over to the next.  Anything else (bad parameters, genuine
    bugs) propagates.

    ``clock`` is the monotonic time source used for the shared deadline
    and every per-entry budget; tests inject a fake clock to make
    deadline behaviour deterministic.

    Raises :class:`~repro.core.exceptions.InfeasibleError` when every
    entry failed — possible only for chains whose last entry can itself
    fail, since budgets never apply a deadline to it.
    """
    from repro.analysis.runners import get_runner

    for name in policy.chain:
        get_runner(name)  # fail fast on typos before spending the deadline
    started = clock()
    deadline_at = (
        None
        if policy.deadline_seconds is None
        else started + policy.deadline_seconds
    )
    attempts = []
    total_checkpoints = 0
    traced = tracing_active()
    last_index = len(policy.chain) - 1
    for index, name in enumerate(policy.chain):
        if index == last_index:
            seconds = None
        elif deadline_at is None:
            seconds = None
        else:
            seconds = max(0.0, deadline_at - clock())
            if seconds <= 0.0:
                attempts.append(Attempt(algorithm=name, outcome="skipped"))
                if traced:
                    incr("budget.skipped")
                continue
        budget = Budget(seconds=seconds, max_nodes=policy.max_nodes, clock=clock)
        runner = get_runner(name)
        try:
            with use_budget(budget):
                tree = runner(net, eps)
        except (AlgorithmLimitError, InfeasibleError) as exc:
            total_checkpoints += budget.checkpoints
            attempts.append(
                Attempt(
                    algorithm=name,
                    outcome=type(exc).__name__,
                    checkpoints=budget.checkpoints,
                    elapsed_seconds=budget.elapsed_seconds(),
                )
            )
            _publish_budget(budget)
            if traced:
                incr("budget.fallbacks")
            continue
        total_checkpoints += budget.checkpoints
        attempts.append(
            Attempt(
                algorithm=name,
                outcome="partial" if budget.exhausted else "ok",
                checkpoints=budget.checkpoints,
                elapsed_seconds=budget.elapsed_seconds(),
            )
        )
        _publish_budget(budget)
        exhausted = budget.exhausted or any(
            a.outcome != "ok" for a in attempts[:-1]
        )
        return PartialResult(
            algorithm=policy.chain[0],
            produced_by=name,
            tree=tree,
            exhausted=exhausted,
            attempts=tuple(attempts),
            checkpoints=total_checkpoints,
            elapsed_seconds=clock() - started,
        )
    outcomes = ", ".join(f"{a.algorithm}: {a.outcome}" for a in attempts)
    raise InfeasibleError(
        f"every fallback chain entry failed ({outcomes})"
    )
