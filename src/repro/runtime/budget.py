"""Cooperative wall-clock / node budgets for the exact solvers.

BMST is NP-complete (Section 4 of the paper) and both exact methods —
BMST_G's ordered spanning-tree enumeration and BKEX's negative-sum
exchange DFS — are exponential in the worst case.  A production sweep
cannot let one adversarial ``(net, eps)`` pair stall the run, so every
search loop in this library accepts a :class:`Budget`: a monotonic
wall-clock deadline plus a cap on search nodes (trees enumerated,
exchanges tried, branch-and-bound nodes, Steiner pairs popped).

Design constraints, in order:

* **The hot loop stays hot.**  ``checkpoint()`` is one integer
  increment, one integer compare for the node cap, and — only every
  ``check_stride`` calls — one ``time.monotonic()`` read for the
  deadline.  An unlimited budget never touches the clock.
* **Monotonic time only.**  Deadlines are computed from
  ``time.monotonic()`` (never ``time.time()``, which jumps under NTP
  adjustments — lint rule R006 enforces this library-wide).
* **Ambient propagation.**  Budgets flow to solvers either explicitly
  (the ``budget=`` keyword) or ambiently through a ``ContextVar`` set
  by :func:`use_budget`, so the uniform ``(net, eps)`` runner signature
  of the registry stays unchanged and budgets survive the
  fork-at-submit boundary of the batch engine.

On exhaustion ``checkpoint()`` raises
:class:`~repro.core.exceptions.BudgetExhaustedError` and keeps raising
on every later call; solvers holding a feasible incumbent catch it once
at their top level and return the incumbent (anytime semantics — the
caller reads ``budget.exhausted`` to learn the result is partial).
"""

from __future__ import annotations

import math
import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Iterator, Optional

from repro.core.exceptions import BudgetExhaustedError, InvalidParameterError

__all__ = [
    "Budget",
    "active_budget",
    "use_budget",
]


class Budget:
    """A monotonic deadline plus a search-node cap, checked cooperatively.

    Parameters
    ----------
    seconds:
        Wall-clock allowance from *now* (the constructor arms the
        deadline immediately); ``None`` disables the time limit.
    max_nodes:
        Cap on ``checkpoint()`` calls — the solver-agnostic unit of
        search effort; ``None`` disables the node limit.
    check_stride:
        How many checkpoints between clock reads.  The node cap is
        checked on every call regardless.
    clock:
        Injection point for tests; must be monotonic.  Defaults to
        ``time.monotonic``.
    """

    __slots__ = (
        "deadline_seconds",
        "max_nodes",
        "check_stride",
        "checkpoints",
        "exhausted_reason",
        "_clock",
        "_started",
        "_deadline",
        "_next_clock_check",
    )

    def __init__(
        self,
        seconds: Optional[float] = None,
        max_nodes: Optional[int] = None,
        check_stride: int = 64,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if seconds is not None and (seconds < 0 or math.isnan(seconds)):
            raise InvalidParameterError(
                f"budget seconds must be >= 0, got {seconds}"
            )
        if max_nodes is not None and max_nodes < 0:
            raise InvalidParameterError(
                f"budget max_nodes must be >= 0, got {max_nodes}"
            )
        if check_stride < 1:
            raise InvalidParameterError(
                f"check_stride must be >= 1, got {check_stride}"
            )
        self.deadline_seconds = seconds
        self.max_nodes = max_nodes
        self.check_stride = check_stride
        self.checkpoints = 0
        self.exhausted_reason: Optional[str] = None
        self._clock = clock
        self._started = clock()
        self._deadline = None if seconds is None else self._started + seconds
        self._next_clock_check = check_stride

    @classmethod
    def unlimited(cls) -> "Budget":
        """A budget that never expires (counts checkpoints only)."""
        return cls(seconds=None, max_nodes=None)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def limited(self) -> bool:
        """True when either limit is armed."""
        return self._deadline is not None or self.max_nodes is not None

    @property
    def exhausted(self) -> bool:
        """True once any limit has tripped (sticky)."""
        return self.exhausted_reason is not None

    def elapsed_seconds(self) -> float:
        return self._clock() - self._started

    def remaining_seconds(self) -> float:
        """Seconds until the deadline (``inf`` without one, floored at 0)."""
        if self._deadline is None:
            return math.inf
        return max(0.0, self._deadline - self._clock())

    # ------------------------------------------------------------------
    # The hot-loop call
    # ------------------------------------------------------------------
    def checkpoint(self) -> None:
        """Count one unit of search work; raise when the budget is gone.

        Called inside solver hot loops — one increment and one compare
        per call, plus a clock read every ``check_stride`` calls.
        """
        self.checkpoints += 1
        if self.exhausted_reason is not None:
            self._raise()
        if self.max_nodes is not None and self.checkpoints > self.max_nodes:
            self.exhausted_reason = "nodes"
            self._raise()
        if self._deadline is not None and self.checkpoints >= self._next_clock_check:
            self._next_clock_check = self.checkpoints + self.check_stride
            if self._clock() >= self._deadline:
                self.exhausted_reason = "deadline"
                self._raise()

    def _raise(self) -> None:
        reason = self.exhausted_reason or "deadline"
        if reason == "nodes":
            detail = f"node budget of {self.max_nodes} checkpoints spent"
        else:
            detail = (
                f"deadline of {self.deadline_seconds:.6g}s passed after "
                f"{self.checkpoints} checkpoints"
            )
        raise BudgetExhaustedError(
            f"budget exhausted: {detail}",
            reason=reason,
            checkpoints=self.checkpoints,
            elapsed_seconds=self.elapsed_seconds(),
        )

    def __repr__(self) -> str:
        limits = []
        if self.deadline_seconds is not None:
            limits.append(f"seconds={self.deadline_seconds:.6g}")
        if self.max_nodes is not None:
            limits.append(f"max_nodes={self.max_nodes}")
        state = self.exhausted_reason or "live"
        return (
            f"<Budget {' '.join(limits) or 'unlimited'} "
            f"checkpoints={self.checkpoints} {state}>"
        )


_ACTIVE: ContextVar[Optional[Budget]] = ContextVar(
    "repro_active_budget", default=None
)


def active_budget() -> Optional[Budget]:
    """The ambient budget of the current context, or None.

    Budget-aware solvers resolve this **once** at entry (never per loop
    iteration): ``budget = budget if budget is not None else
    active_budget()``.
    """
    return _ACTIVE.get()


@contextmanager
def use_budget(budget: Optional[Budget]) -> Iterator[Optional[Budget]]:
    """Install ``budget`` as the ambient budget for the enclosed block.

    Lets callers impose a budget through the uniform ``(net, eps)``
    runner signature::

        budget = Budget(seconds=0.5)
        with use_budget(budget):
            tree = get_runner("bkex")(net, eps)
        if budget.exhausted:
            ...  # tree is the best-so-far feasible incumbent
    """
    token = _ACTIVE.set(budget)
    try:
        yield budget
    finally:
        _ACTIVE.reset(token)
