"""Deadline/budget execution layer: cooperative cancellation, anytime
results, fallback chains, and fault injection.

The exact solvers of this library are exponential in the worst case
(BMST is NP-complete); this package is what lets a production sweep run
them anyway:

* :mod:`repro.runtime.budget` — :class:`Budget` (monotonic wall-clock
  deadline + search-node cap) checked cooperatively inside every solver
  hot loop, with ambient propagation through a ``ContextVar``;
* :mod:`repro.runtime.solve` — :class:`FallbackPolicy` quality ladders
  and the :func:`solve` walker returning :class:`PartialResult`
  (anytime semantics: always a feasible tree, plus honesty about
  whether a budget tripped and which ladder entry produced it);
* :mod:`repro.runtime.chaos` — deterministic injection of worker
  crashes, slow jobs and mid-run exceptions, so the batch engine's
  recovery paths are testable.

See ``docs/robustness.md`` for the guide.
"""

from repro.runtime.budget import Budget, active_budget, use_budget
from repro.runtime.chaos import (
    ChaosInjectedError,
    ChaosPolicy,
    install as install_chaos,
    installed as chaos_installed,
)
from repro.runtime.solve import (
    Attempt,
    FallbackPolicy,
    PartialResult,
    default_policy,
    run_with_budget,
    solve,
)

__all__ = [
    "Attempt",
    "Budget",
    "ChaosInjectedError",
    "ChaosPolicy",
    "FallbackPolicy",
    "PartialResult",
    "active_budget",
    "chaos_installed",
    "default_policy",
    "install_chaos",
    "run_with_budget",
    "solve",
    "use_budget",
]
