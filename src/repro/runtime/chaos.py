"""Deterministic fault injection for the batch engine's recovery paths.

Recovery code that only runs when a worker segfaults is recovery code
that has never run.  This harness makes the three production failure
modes reproducible on demand, keyed by **job index** so every run
injects exactly the same faults:

* **worker crash** — the worker process exits hard (``os._exit``),
  which the parent observes as a ``BrokenProcessPool``; in a serial
  batch (no worker to kill without killing the caller) the same
  injection raises :class:`~repro.core.exceptions.WorkerCrashError`
  instead, so the job becomes a failure record rather than a dead test
  run;
* **slow job** — the worker sleeps before solving, long enough to trip
  the engine's stall backstop or a per-job deadline;
* **mid-run exception** — :class:`ChaosInjectedError` is raised from
  inside the solver call, exercising the failure-record path.

Injections are gated on the *attempt* number (default: first attempt
only), so a crashed or slow job succeeds when the engine requeues it —
which is exactly the accounting the recovery tests need to observe.

The policy crosses the worker boundary through the ``REPRO_CHAOS``
environment variable (JSON), inherited at pool creation; install one
with :func:`install` or the :func:`installed` context manager before
calling ``run_batch``.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import time
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from typing import Iterator, Optional, Tuple

from repro.core.exceptions import (
    InvalidParameterError,
    ReproError,
    WorkerCrashError,
)

__all__ = [
    "CHAOS_ENV_VAR",
    "ChaosInjectedError",
    "ChaosPolicy",
    "active_policy",
    "clear",
    "inject_failure",
    "inject_infrastructure",
    "inject_kill",
    "install",
    "installed",
]

CHAOS_ENV_VAR = "REPRO_CHAOS"

#: Exit status of chaos-crashed workers; distinctive in worker logs.
CRASH_EXIT_CODE = 86


class ChaosInjectedError(ReproError):
    """The deliberate mid-run failure raised by ``fail_jobs`` injection."""


@dataclass(frozen=True)
class ChaosPolicy:
    """Which job indices fail, and how.

    All three channels are keyed by the batch job index (the
    ``JobRecord.index`` / ``JobSpec`` position), making injection a pure
    function of ``(index, attempt)`` — deterministic across runs and
    start methods.
    """

    crash_jobs: Tuple[int, ...] = ()
    """Jobs whose worker process dies hard (``BrokenProcessPool``)."""
    slow_jobs: Tuple[int, ...] = ()
    """Jobs that sleep ``slow_seconds`` before solving."""
    fail_jobs: Tuple[int, ...] = ()
    """Jobs that raise :class:`ChaosInjectedError` mid-run."""
    kill_jobs: Tuple[int, ...] = ()
    """Sweep jobs at which the worker SIGKILLs itself mid-lease — the
    distributed-sweep analogue of ``crash_jobs``: no cleanup handler
    runs, the lease goes stale, and a survivor must reclaim it."""
    slow_seconds: float = 0.5
    only_first_attempt: bool = True
    """Inject only on attempt 1, so requeued jobs succeed."""

    def __post_init__(self) -> None:
        if self.slow_seconds < 0:
            raise InvalidParameterError(
                f"slow_seconds must be >= 0, got {self.slow_seconds}"
            )

    def triggers(self, index: int, attempt: int) -> bool:
        """Would *any* channel fire for this (index, attempt)?"""
        if self.only_first_attempt and attempt > 1:
            return False
        return (
            index in self.crash_jobs
            or index in self.slow_jobs
            or index in self.fail_jobs
            or index in self.kill_jobs
        )

    def to_json(self) -> str:
        return json.dumps(asdict(self), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ChaosPolicy":
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise InvalidParameterError(
                f"malformed {CHAOS_ENV_VAR} policy: {exc}"
            ) from exc
        return cls(
            crash_jobs=tuple(payload.get("crash_jobs", ())),
            slow_jobs=tuple(payload.get("slow_jobs", ())),
            fail_jobs=tuple(payload.get("fail_jobs", ())),
            kill_jobs=tuple(payload.get("kill_jobs", ())),
            slow_seconds=float(payload.get("slow_seconds", 0.5)),
            only_first_attempt=bool(payload.get("only_first_attempt", True)),
        )


def install(policy: ChaosPolicy) -> None:
    """Arm ``policy`` via the environment (inherited by future workers)."""
    os.environ[CHAOS_ENV_VAR] = policy.to_json()


def clear() -> None:
    """Disarm chaos injection."""
    os.environ.pop(CHAOS_ENV_VAR, None)


@contextmanager
def installed(policy: ChaosPolicy) -> Iterator[ChaosPolicy]:
    """``install`` for the enclosed block, restoring the previous state."""
    previous = os.environ.get(CHAOS_ENV_VAR)
    install(policy)
    try:
        yield policy
    finally:
        if previous is None:
            clear()
        else:
            os.environ[CHAOS_ENV_VAR] = previous


def active_policy() -> Optional[ChaosPolicy]:
    """The armed policy, parsed from the environment; None when disarmed."""
    raw = os.environ.get(CHAOS_ENV_VAR)
    if not raw:
        return None
    return ChaosPolicy.from_json(raw)


def _in_worker_process() -> bool:
    return multiprocessing.parent_process() is not None


def inject_infrastructure(index: int, attempt: int) -> None:
    """Crash/slow injection, called by ``execute_job`` before solving.

    Runs *outside* the job's failure-isolation ``try`` so a crash takes
    the worker down exactly like a segfault would.  Crashing a serial
    batch would kill the caller's process, so in-process execution
    raises :class:`WorkerCrashError` instead (still outside the
    isolation handler: serial callers see the engine synthesise the
    failure record, matching the parallel accounting).
    """
    policy = active_policy()
    if policy is None:
        return
    if policy.only_first_attempt and attempt > 1:
        return
    if index in policy.crash_jobs:
        if _in_worker_process():
            os._exit(CRASH_EXIT_CODE)
        raise WorkerCrashError(
            f"chaos crash injection for job {index} (serial mode)"
        )
    if index in policy.slow_jobs:
        time.sleep(policy.slow_seconds)


def inject_kill(index: int, attempt: int) -> None:
    """SIGKILL injection for distributed-sweep workers, mid-lease.

    Called by the sweep worker loop after it has claimed a lease and
    before it completes the chunk, so the kill leaves a stale lease
    behind — exactly the state expiry-based reclamation must recover
    from.  SIGKILL (not ``os._exit``) is the point: no ``atexit``, no
    ``finally``, no flush; the process is simply gone.

    Like :func:`inject_infrastructure`, a kill in a non-worker process
    (serial execution in the caller's process) degrades to
    :class:`WorkerCrashError` so tests do not kill their own runner.
    """
    policy = active_policy()
    if policy is None:
        return
    if policy.only_first_attempt and attempt > 1:
        return
    if index in policy.kill_jobs:
        if _in_worker_process():
            os.kill(os.getpid(), signal.SIGKILL)
        raise WorkerCrashError(
            f"chaos kill injection for job {index} (serial mode)"
        )


def inject_failure(index: int, attempt: int) -> None:
    """Mid-run exception injection, called from inside the solver path."""
    policy = active_policy()
    if policy is None:
        return
    if policy.only_first_attempt and attempt > 1:
        return
    if index in policy.fail_jobs:
        raise ChaosInjectedError(
            f"chaos failure injection for job {index} (attempt {attempt})"
        )
