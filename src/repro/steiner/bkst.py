"""BKST — bounded path length Steiner trees on the Hanan grid (Sec. 3.3).

A spanning tree on the routing-graph nodes that covers every terminal is
a Steiner tree.  BKST transplants the BKRUS recipe onto the Hanan grid:

1. Compute distances between every pair of *active sinks* (initially the
   terminals) and keep them in a heap.
2. Pop the closest pair; test feasibility with the BKRUS conditions
   (3-a)/(3-b), where distances/radii live on the grown Steiner tree.
3. If feasible, realise the pair as an L-shaped grid path (no zigzags),
   choosing the corner nearer the source; every grid node on the added
   path becomes a *new sink*, and its distances to the still-unmerged
   active sinks enter the heap.
4. Repeat until every terminal is connected.

The tree cost is lower than any spanning heuristic because direct
source-to-sink wires are shared: the savings the paper reports are 5-30%
and grow as ``eps -> 0``.

Implementation notes
--------------------
* Paths that would run through a *foreign* component (neither endpoint's
  tree, or an unconnected terminal) are deferred and retried after the
  next merge; this keeps the feasibility bookkeeping exact.  If the heap
  drains with fragments left, remaining components are attached through
  their witness node directly to the source and the result is validated
  against the bound (an :class:`InfeasibleError` would flag a logic
  regression, not a property of the input).
* The per-component path matrix/radius bookkeeping reuses the BKRUS
  ``Merge`` update, one grid edge at a time, so the complexity is
  ``O(V * m^2)`` with ``m`` grid nodes — the paper's bound.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.disjoint_set import ListDisjointSet
from repro.core.exceptions import InfeasibleError, InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.observability import incr, span, tracing_active
from repro.runtime.budget import Budget, active_budget
from repro.steiner.grid_graph import GridGraph
from repro.steiner.hanan import hanan_grid
from repro.steiner.routes import RouteSegment, route_segments


class SteinerTree:
    """A rectilinear Steiner tree of a net, realised on a grid graph.

    All metric accessors (:attr:`cost`, path lengths, the eps bound)
    use the grid's *costed* edge lengths, which coincide with geometric
    wire lengths on grids without cost regions.  ``bound_radius``
    overrides the radius the eps bound is measured against — the
    obstacle-aware constructions pass the costed shortest-path radius,
    since the net's geometric radius is unreachable around blockages.
    """

    def __init__(
        self,
        net: Net,
        grid: GridGraph,
        edges: Sequence[Tuple[int, int]],
        bound_radius: Optional[float] = None,
    ) -> None:
        self.net = net
        self.grid = grid
        self.edges: Tuple[Tuple[int, int], ...] = tuple(sorted(set(edges)))
        self.bound_radius = bound_radius
        self._adjacency: Optional[Dict[int, List[Tuple[int, float]]]] = None
        self._source_paths: Optional[Dict[int, float]] = None

    @property
    def cost(self) -> float:
        """Total costed length (each grid edge counted once)."""
        return float(
            sum(self.grid.edge_cost(u, v) for u, v in self.edges)
        )

    @property
    def wire_length(self) -> float:
        """Total geometric wire length, ignoring region cost factors."""
        return float(
            sum(self.grid.edge_length(u, v) for u, v in self.edges)
        )

    def adjacency(self) -> Dict[int, List[Tuple[int, float]]]:
        if self._adjacency is None:
            adjacency: Dict[int, List[Tuple[int, float]]] = {}
            for u, v in self.edges:
                length = self.grid.edge_cost(u, v)
                adjacency.setdefault(u, []).append((v, length))
                adjacency.setdefault(v, []).append((u, length))
            self._adjacency = adjacency
        return self._adjacency

    def route_segments(self) -> "List[RouteSegment]":
        """The tree as collinear-merged axis-aligned wire runs."""
        return route_segments(self.grid, list(self.edges))

    def nodes(self) -> Set[int]:
        used: Set[int] = set()
        for u, v in self.edges:
            used.add(u)
            used.add(v)
        if not used:
            used.add(self.grid.terminal_ids[SOURCE])
        return used

    def source_grid_id(self) -> int:
        return self.grid.terminal_ids[SOURCE]

    def grid_path_lengths_from_source(self) -> Dict[int, float]:
        """Tree path length from the source to every tree node."""
        if self._source_paths is None:
            adjacency = self.adjacency()
            start = self.source_grid_id()
            lengths = {start: 0.0}
            stack = [start]
            while stack:
                node = stack.pop()
                for neighbor, length in adjacency.get(node, ()):
                    if neighbor not in lengths:
                        lengths[neighbor] = lengths[node] + length
                        stack.append(neighbor)
            self._source_paths = lengths
        return self._source_paths

    def sink_path_lengths(self) -> Dict[int, float]:
        """Tree path length from the source to every *sink* (net node)."""
        lengths = self.grid_path_lengths_from_source()
        result = {}
        for node in range(1, self.net.num_terminals):
            gid = self.grid.terminal_ids[node]
            if gid not in lengths:
                raise InfeasibleError(f"sink {node} is not connected")
            result[node] = lengths[gid]
        return result

    def longest_sink_path(self) -> float:
        return max(self.sink_path_lengths().values())

    def satisfies_bound(self, eps: float, tolerance: float = 1e-9) -> bool:
        if not math.isfinite(eps):
            bound = math.inf
        elif self.bound_radius is not None:
            bound = (1.0 + eps) * self.bound_radius
        else:
            bound = self.net.path_bound(eps)
        return self.longest_sink_path() <= bound + tolerance

    def is_connected_tree(self) -> bool:
        """Acyclic and spanning all terminals?"""
        nodes = self.nodes()
        if len(self.edges) != len(nodes) - 1:
            return False
        lengths = self.grid_path_lengths_from_source()
        if set(lengths) != nodes:
            return False
        return all(
            self.grid.terminal_ids[t] in lengths
            for t in range(self.net.num_terminals)
        )

    def __repr__(self) -> str:
        return (
            f"<SteinerTree cost={self.cost:.4g} "
            f"radius={self.longest_sink_path():.4g} edges={len(self.edges)}>"
        )


class _GridForest:
    """BKRUS-style P/r bookkeeping on grid nodes, one edge at a time."""

    def __init__(self, grid: GridGraph, source_gid: int) -> None:
        m = grid.num_nodes
        self.grid = grid
        self.source = source_gid
        self.sets = ListDisjointSet(m)
        self.P = np.zeros((m, m))
        self.r = np.zeros(m)
        self.edges: List[Tuple[int, int]] = []
        # Manhattan distance of each grid node to the source location.
        sx, sy = grid.coordinate(source_gid)
        self.source_dist = np.array(
            [
                abs(x - sx) + abs(y - sy)
                for x, y in (grid.coordinate(i) for i in range(m))
            ]
        )

    def connected(self, a: int, b: int) -> bool:
        return self.sets.connected(a, b)

    def in_source_component(self, a: int) -> bool:
        return self.sets.connected(a, self.source)

    def pair_distances(self, node: int, others: Sequence[int]) -> List[float]:
        """Grid distances from ``node`` to each of ``others``.

        Backend hook: the reference walks the scalar ``manhattan``;
        the numpy forest overrides this with one vectorized gather
        (elementwise-identical floats).
        """
        manhattan = self.grid.manhattan
        return [manhattan(node, other) for other in others]

    def unconnected_filter(
        self, node: int, candidates: Sequence[int]
    ) -> List[int]:
        """Members of ``candidates`` not yet connected to ``node``, in
        the given order, with ``node`` itself dropped.

        Backend hook: the numpy forest answers with one component-label
        gather instead of per-candidate union-find lookups.
        """
        connected = self.connected
        return [
            c for c in candidates if c != node and not connected(node, c)
        ]

    def merge_edge(self, u: int, v: int) -> bool:
        """Union two components via a single grid edge; False on cycle."""
        if self.sets.connected(u, v):
            return False
        d = self.grid.edge_cost(u, v)
        mu = np.asarray(self.sets.members_view(u), dtype=int)
        mv = np.asarray(self.sets.members_view(v), dtype=int)
        cross = self.P[mu, u][:, None] + d + self.P[v, mv][None, :]
        self.P[np.ix_(mu, mv)] = cross
        self.P[np.ix_(mv, mu)] = cross.T
        self.r[mu] = np.maximum(self.r[mu], cross.max(axis=1))
        self.r[mv] = np.maximum(self.r[mv], cross.max(axis=0))
        self.sets.union(u, v)
        self.edges.append((u, v) if u < v else (v, u))
        return True

    def feasible_pair(self, a: int, b: int, bound: float, tol: float) -> bool:
        """Conditions (3-a)/(3-b) for joining ``t_a`` and ``t_b`` with a
        fresh path of length ``manhattan(a, b)``."""
        return self.feasible_splice(a, b, self.grid.manhattan(a, b), bound, tol)

    def feasible_splice(
        self, z: int, w: int, length: float, bound: float, tol: float
    ) -> bool:
        """Conditions (3-a)/(3-b) for a fresh corridor of ``length``
        joining ``t_z`` and ``t_w`` at exactly ``z`` and ``w``."""
        if self.in_source_component(z):
            return self.P[self.source, z] + length + self.r[w] <= bound + tol
        if self.in_source_component(w):
            return self.P[self.source, w] + length + self.r[z] <= bound + tol
        mz = np.asarray(self.sets.members_view(z), dtype=int)
        mw = np.asarray(self.sets.members_view(w), dtype=int)
        radii_z = np.maximum(self.r[mz], self.P[mz, z] + length + self.r[w])
        radii_w = np.maximum(self.r[mw], self.P[mw, w] + length + self.r[z])
        slack = np.concatenate(
            [
                self.source_dist[mz] + radii_z,
                self.source_dist[mw] + radii_w,
            ]
        )
        return bool(slack.min() <= bound + tol)

    def lub_feasible_splice(
        self,
        z: int,
        w: int,
        length: float,
        lower: float,
        upper: float,
        terminals: Set[int],
        tol: float,
    ) -> bool:
        """Two-sided splice feasibility (Section 6 on the Hanan grid).

        The upper bound constrains every node; the lower bound only
        constrains *terminal sinks* (Steiner points carry no flip-flop).
        A merge onto the source component freezes the attached nodes'
        source paths, so the attaching side's terminals are checked
        right here; a merge between source-free components needs a
        witness whose direct wiring respects both bounds (conservative:
        the witness's own direct distance must already clear the floor).
        """
        source_side = None
        if self.in_source_component(z):
            source_side, far_side = z, w
        elif self.in_source_component(w):
            source_side, far_side = w, z
        if source_side is not None:
            head = float(self.P[self.source, source_side]) + length
            if head + float(self.r[far_side]) > upper + tol:
                return False
            members = [
                x
                for x in self.sets.members_view(far_side)
                if x in terminals
            ]
            if not members:
                return True
            paths = head + self.P[far_side, np.asarray(members, dtype=int)]
            return bool(paths.min() >= lower - tol)
        mz = np.asarray(self.sets.members_view(z), dtype=int)
        mw = np.asarray(self.sets.members_view(w), dtype=int)
        radii_z = np.maximum(self.r[mz], self.P[mz, z] + length + self.r[w])
        radii_w = np.maximum(self.r[mw], self.P[mw, w] + length + self.r[z])
        direct = np.concatenate([self.source_dist[mz], self.source_dist[mw]])
        radii = np.concatenate([radii_z, radii_w])
        witness = (direct >= lower - tol) & (direct + radii <= upper + tol)
        return bool(witness.any())


class _PathRealiser:
    """Turns an accepted pair into a concrete grid corridor.

    For a pair (a, b), each L-shaped route is scanned for a *corridor*:
    a maximal stretch of untouched crossings whose two boundary nodes
    lie in ``t_a`` and ``t_b`` respectively (the boundaries may be the
    endpoints themselves, or deeper splice points when the route brushes
    its own trees).  The corridor is re-tested with the splice-exact
    feasibility conditions before being merged, so the (3-a)/(3-b)
    arithmetic always describes the connection actually built.
    """

    def __init__(
        self,
        grid: GridGraph,
        forest: "_GridForest",
        terminals: Set[int],
        active: Set[int],
        source_gid: int,
        splice_feasible,
    ) -> None:
        self.grid = grid
        self.forest = forest
        self.terminals = terminals
        self.active = active
        self.source_gid = source_gid
        self.splice_feasible = splice_feasible
        """Callable ``(z, w, length) -> bool`` — the bound policy."""

    def _classify(self, node: int, a: int, b: int) -> str:
        forest = self.forest
        if forest.sets.connected(node, a):
            return "A"
        if forest.sets.connected(node, b):
            return "B"
        if forest.sets.component_size(node) == 1 and node not in self.terminals:
            return "free"
        return "X"

    def _corridors(self, nodes: List[int], a: int, b: int):
        """Yield (length, segment) corridors along one route.

        Lengths are *costed* (identical to wire length on uncosted
        grids).  On a blocked grid, corridors crossing an obstacle are
        skipped — the walk exists geometrically but is unroutable.
        """
        labels = [self._classify(node, a, b) for node in nodes]
        blocked = self.grid.num_blocked_edges > 0
        n = len(nodes)
        for i in range(n):
            if labels[i] not in ("A", "B"):
                continue
            j = i + 1
            while j < n and labels[j] == "free":
                j += 1
            if j < n and labels[j] in ("A", "B") and labels[j] != labels[i]:
                segment = nodes[i : j + 1]
                if blocked and not self.grid.is_walk_routable(segment):
                    continue
                yield self.grid.path_cost(segment), segment

    def corridor_candidates(self, a: int, b: int) -> List[Tuple[float, List[int]]]:
        """All corridors over both L-shaped routes, cheapest first; the
        corner nearer the source breaks ties (the paper's rule)."""
        sx, sy = self.grid.coordinate(self.source_gid)
        found: List[Tuple[float, float, int, List[int]]] = []
        for corner in self.grid.corner_candidates(a, b):
            cx, cy = self.grid.coordinate(corner)
            corner_rank = abs(cx - sx) + abs(cy - sy)
            nodes = self.grid.l_path_nodes(a, b, corner)
            for length, segment in self._corridors(nodes, a, b):
                found.append((length, corner_rank, corner, segment))
        found.sort(key=lambda item: (item[0], item[1], item[2]))
        return [(length, segment) for length, _, _, segment in found]

    def best_corridor(self, a: int, b: int) -> "List[int] | None":
        """The cheapest feasible corridor for (a, b), or None (deferred)."""
        for length, segment in self.corridor_candidates(a, b):
            z, w = segment[0], segment[-1]
            if self.splice_feasible(z, w, length):
                return segment
        return None


def bkst(
    net: Net,
    eps: float,
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> SteinerTree:
    """Construct a bounded path length Steiner tree on the Hanan grid.

    Every sink's tree path from the source is at most ``(1 + eps) * R``
    with ``R`` the direct distance to the farthest sink (as in BKRUS —
    grid shortest paths equal Manhattan distances, so ``R`` coincides
    with the spanning-tree case).

    A sink can become physically boxed in: the greedy may lay wires that
    occupy every feasible corridor the sink's witness guarantee relied
    on (a grid-sharing hazard the spanning-tree analysis does not have).
    When that happens the construction restarts with the stranded sinks
    *pre-wired* on direct L-runs from the source — direct runs from the
    source splice against each other at exact geometric distances, so a
    prewired sink always satisfies the bound, and each restart strictly
    grows the prewire set, guaranteeing termination (the all-prewired
    limit is the SPT-like star, feasible for every ``eps >= 0``).

    ``budget`` (defaulting to the ambient
    :func:`~repro.runtime.active_budget`) is checkpointed once per pair
    pop during construction.  A partial Steiner construction is not a
    tree, so exhaustion propagates as
    :class:`~repro.core.exceptions.BudgetExhaustedError` — a fallback
    chain must supply the anytime answer.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    if budget is None:
        budget = active_budget()
    bound = net.path_bound(eps) if math.isfinite(eps) else math.inf

    prewire: Set[int] = set()
    traced = tracing_active()
    with span("bkst"):
        return _bkst_attempts(net, bound, prewire, tolerance, traced, budget)


def _bkst_attempts(
    net: Net,
    bound: float,
    prewire: Set[int],
    tolerance: float,
    traced: bool,
    budget: Optional[Budget] = None,
    forest_cls: type = _GridForest,
) -> SteinerTree:
    """The restart loop of :func:`bkst` (split out for span scoping)."""
    for attempt in range(net.num_terminals + 1):
        if traced and attempt > 0:
            incr("bkst.restarts")
        tree, stranded = _build(
            net, bound, prewire, tolerance, lower=0.0, budget=budget,
            forest_cls=forest_cls,
        )
        if tree is not None:
            if not tree.is_connected_tree():
                raise InfeasibleError(
                    "BKST produced a disconnected or cyclic result"
                )
            if (
                math.isfinite(bound)
                and tree.longest_sink_path() > bound + 1e-6
            ):
                raise InfeasibleError(
                    "BKST result violates the path bound — internal logic error"
                )
            return tree
        if not stranded or stranded <= prewire:
            break
        prewire |= stranded
    raise InfeasibleError("BKST failed to converge — internal logic error")


def _build(
    net: Net,
    bound: float,
    prewire: Set[int],
    tolerance: float,
    lower: float = 0.0,
    budget: Optional[Budget] = None,
    forest_cls: type = _GridForest,
) -> "Tuple[SteinerTree | None, Set[int]]":
    """One BKST construction attempt.

    ``lower = 0`` is the classic upper-bound-only construction; a
    positive ``lower`` activates the two-sided (Section 6) feasibility,
    under which stranded fragments signal infeasibility rather than a
    prewire restart (direct prewire runs would violate the floor).

    Returns ``(tree, set())`` on success or ``(None, stranded_gids)``
    when some sinks could not be feasibly routed (restart signal).
    """
    grid = hanan_grid(net)
    source_gid = grid.terminal_ids[SOURCE]
    forest = forest_cls(grid, source_gid)
    terminals = set(grid.terminal_ids.values())
    active: Set[int] = set(terminals)
    # Grid size / pair / merge counters, summed over construction
    # attempts when the prewire loop restarts.  A single flag check per
    # build keeps the untraced path free of bookkeeping.
    traced = tracing_active()
    if traced:
        incr("bkst.grid_nodes", grid.num_nodes)

    if lower > 0.0:
        def splice_feasible(z: int, w: int, length: float) -> bool:
            return forest.lub_feasible_splice(
                z, w, length, lower, bound, terminals, tolerance
            )
    else:
        def splice_feasible(z: int, w: int, length: float) -> bool:
            return forest.feasible_splice(z, w, length, bound, tolerance)

    counter = itertools.count()
    heap: List[Tuple[float, int, int, int]] = []

    def push_pair(a: int, b: int) -> None:
        heapq.heappush(heap, (grid.manhattan(a, b), next(counter), a, b))

    def push_pairs(node: int, others: List[int]) -> None:
        """Batched ``push_pair`` — one vectorizable distance gather, the
        same heap entries in the same counter order."""
        for other, dist in zip(others, forest.pair_distances(node, others)):
            heapq.heappush(heap, (dist, next(counter), node, other))

    deferred: List[Tuple[int, int]] = []
    realiser = _PathRealiser(
        grid, forest, terminals, active, source_gid, splice_feasible
    )

    def merge_path(nodes: List[int]) -> None:
        if traced:
            incr("bkst.steiner_merges")
        newly_active = [node for node in nodes if node not in active]
        for u, v in zip(nodes, nodes[1:]):
            forest.merge_edge(u, v)
        for node in newly_active:
            active.add(node)
            push_pairs(node, forest.unconnected_filter(node, list(active)))
        # Retry pairs that were blocked by foreign components.
        while deferred:
            da, db = deferred.pop()
            if not forest.connected(da, db):
                push_pair(da, db)

    # Pre-wire previously stranded sinks on direct L-runs, nearest
    # first so earlier runs are splice targets ("A" labels) for later
    # ones rather than blockers.
    stranded: Set[int] = set()
    for gid in sorted(prewire, key=lambda g: (grid.manhattan(source_gid, g), g)):
        if forest.connected(source_gid, gid):
            continue
        segment = realiser.best_corridor(source_gid, gid)
        if segment is None:
            # Another terminal sits exactly on both direct routes; make
            # it part of the prewire set on the next attempt.
            for corner in grid.corner_candidates(source_gid, gid):
                for node in grid.l_path_nodes(source_gid, gid, corner):
                    if node in terminals and node != source_gid:
                        stranded.add(node)
            stranded.add(gid)
            continue
        merge_path(segment)
    if stranded:
        return None, stranded | prewire

    for a in active:
        push_pairs(
            a, [b for b in active if a < b and not forest.connected(a, b)]
        )

    def all_terminals_connected() -> bool:
        return all(forest.connected(source_gid, t) for t in terminals)

    # Connectivity only changes on a merge, so the spanning test runs
    # once up front and again after each merge instead of per pop.
    spanning = all_terminals_connected()
    while heap and not spanning:
        if budget is not None:
            budget.checkpoint()
        _, _, a, b = heapq.heappop(heap)
        if forest.connected(a, b):
            continue
        if traced:
            incr("bkst.pairs_tried")
        if not splice_feasible(a, b, grid.manhattan(a, b)):
            if traced:
                incr("bkst.bound_rejections")
            continue
        segment = realiser.best_corridor(a, b)
        if segment is None:
            deferred.append((a, b))
        else:
            merge_path(segment)
            spanning = all_terminals_connected()

    if not all_terminals_connected():
        if lower > 0.0:
            stranded = {
                t
                for t in terminals
                if not forest.connected(source_gid, t)
            }
            return None, stranded
        stranded = _attach_leftovers(
            realiser, merge_path, terminals, forest, source_gid, bound,
            tolerance,
        )
        if stranded:
            return None, stranded | prewire

    return SteinerTree(net, grid, forest.edges), set()


def _route_to_source(
    grid: GridGraph,
    forest: _GridForest,
    terminals: Set[int],
    source_gid: int,
    fragment_member: int,
    bound: float,
    tolerance: float,
) -> "List[int] | None":
    """Cheapest feasible corridor from the source component to a fragment.

    Multi-source Dijkstra seeded with every source-component node at key
    ``path(S, z)`` (the tree path length, not the geometric distance),
    expanding through untouched crossings only.  Arrival at a fragment
    node ``w`` with total ``path(S, z) + corridor`` obeys condition
    (3-a) iff ``total + r[w] <= bound`` — exactly what the search
    minimises.  Returns the corridor node walk ``[z, ..., w]`` or None
    when the fragment is walled in.
    """
    fragment_root = forest.sets.find(fragment_member)
    dist: dict = {}
    parent: dict = {}
    heap: List[Tuple[float, int]] = []
    for z in forest.sets.members_view(source_gid):
        key = float(forest.P[source_gid, z])
        dist[z] = key
        parent[z] = -1
        heapq.heappush(heap, (key, z))
    best: "Tuple[float, int, int] | None" = None
    source_root = forest.sets.find(source_gid)
    while heap:
        d, node = heapq.heappop(heap)
        if d > dist.get(node, math.inf) + 1e-12:
            continue
        if best is not None and d >= best[0]:
            break
        for neighbor, length in grid.neighbors(node):
            root = forest.sets.find(neighbor)
            if root == fragment_root:
                total = d + length
                feasible = total + float(forest.r[neighbor]) <= bound + tolerance
                if feasible and (best is None or total < best[0]):
                    best = (total, node, neighbor)
                continue
            if root == source_root:
                continue  # already seeded at its exact tree path length
            if (
                forest.sets.component_size(neighbor) == 1
                and neighbor not in terminals
            ):
                candidate = d + length
                if candidate < dist.get(neighbor, math.inf) - 1e-12:
                    dist[neighbor] = candidate
                    parent[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
    if best is None:
        return None
    _, last_free, arrival = best
    walk = [arrival]
    node = last_free
    while node != -1:
        walk.append(node)
        node = parent[node]
    walk.reverse()
    return walk


def _attach_leftovers(
    realiser: _PathRealiser,
    merge_path,
    terminals: Set[int],
    forest: _GridForest,
    source_gid: int,
    bound: float,
    tolerance: float,
) -> Set[int]:
    """Completion pass: route each leftover fragment to the source.

    Fragments get stranded when both L-shaped realisations of every
    remaining pair are physically blocked by earlier wiring.  The grid
    router finds an arbitrary-shape feasible corridor instead; sinks of
    fragments that remain unroutable are returned so the caller can
    restart with them pre-wired.
    """
    grid = realiser.grid

    def stranded_terminals() -> List[int]:
        return [t for t in terminals if not forest.connected(source_gid, t)]

    unroutable: Set[int] = set()
    guard = 0
    while True:
        remaining = [t for t in stranded_terminals() if t not in unroutable]
        if not remaining:
            return unroutable
        guard += 1
        if guard > len(terminals) + grid.num_nodes:
            raise InfeasibleError("BKST completion fallback failed to converge")
        segment = _route_to_source(
            grid, forest, terminals, source_gid, remaining[0], bound, tolerance
        )
        if segment is not None:
            merge_path(segment)
        else:
            unroutable.add(remaining[0])


def lub_bkst(
    net: Net,
    eps1: float,
    eps2: float,
    tolerance: float = 1e-9,
) -> SteinerTree:
    """Lower AND upper bounded Steiner tree on the Hanan grid.

    The Section 6 two-sided bound applied to the Steiner construction —
    listed as future work in the paper ("extending this work to lower
    and upper bounded Steiner trees").  Every *sink*'s tree path from
    the source lies in ``[eps1 * R, (1 + eps2) * R]``; Steiner points
    are only constrained from above.  Because path lengths on the grid
    are realised by shortest corridors, deliberately meandering routes
    are not generated, and tight ``(eps1, eps2)`` boxes can be
    infeasible exactly as for the spanning construction — an
    :class:`~repro.core.exceptions.InfeasibleError` reports those.
    """
    if eps1 < 0 or math.isnan(eps1):
        raise InvalidParameterError(f"eps1 must be >= 0, got {eps1}")
    if eps2 < 0 or math.isnan(eps2):
        raise InvalidParameterError(f"eps2 must be >= 0, got {eps2}")
    radius = net.radius()
    lower = eps1 * radius
    upper = (1.0 + eps2) * radius
    if lower > upper:
        raise InfeasibleError(
            f"lower bound {lower:.6g} exceeds upper bound {upper:.6g}"
        )
    tree, stranded = _build(net, upper, set(), tolerance, lower=lower)
    if tree is None:
        raise InfeasibleError(
            f"no LUB Steiner tree found for eps1={eps1}, eps2={eps2} "
            f"(stranded sinks: {sorted(stranded)})"
        )
    if not tree.is_connected_tree():
        raise InfeasibleError("LUB-BKST produced a disconnected result")
    paths = tree.sink_path_lengths()
    if min(paths.values()) < lower - 1e-6 or max(paths.values()) > upper + 1e-6:
        raise InfeasibleError(
            "LUB-BKST result violates the bounds — internal logic error"
        )
    return tree


def bkst_cost(net: Net, eps: float) -> float:
    """Cost of the BKST tree for ``(net, eps)``."""
    return bkst(net, eps).cost
