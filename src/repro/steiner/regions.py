"""Weighted-region routing substrate (cost maps over the grid).

Obstacles model hard keep-outs; many physical-design scenarios are
softer — congestion maps, noisy neighbourhoods, double-spacing zones —
where routing *through* a region is allowed but costs more than routing
around it.  A :class:`CostRegion` is the rectangular primitive for that:
edges crossing its open interior cost ``multiplier`` times their
geometric length.  An ``inf`` multiplier degenerates to a hard blockage,
so obstacles are the limiting case of the same seam (they register
through :meth:`~repro.steiner.grid_graph.GridGraph.add_cost_region`'s
``inf`` branch, which delegates to ``add_obstacle``).

:func:`region_grid` builds the channel-intersection-style grid whose
lines run through every terminal *and* every region boundary, then
registers blockages and cost factors on it.  Identity regions
(``multiplier == 1.0``) are dropped before any grid line is added, so a
cost map of all ones yields a grid — and therefore trees — bit-identical
to the uncosted construction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net
from repro.steiner.grid_graph import GridGraph
from repro.steiner.hanan import hanan_coordinates

__all__ = ["CostRegion", "effective_regions", "region_grid"]


@dataclass(frozen=True)
class CostRegion:
    """A rectangular weighted region (congestion, soft keep-out).

    Grid edges crossing the *open* interior cost ``multiplier`` times
    their geometric length; boundary edges stay at unit cost, so routes
    may hug the region.  ``multiplier`` must be ``>= 1`` — regions make
    routing more expensive, never cheaper — with two special values:
    ``1.0`` is an explicit no-op (dropped before grid construction) and
    ``inf`` turns the region into a hard blockage.  Zero-area
    rectangles are rejected: they could inject grid lines yet cost
    nothing, which is never what the caller meant.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float
    multiplier: float

    def __post_init__(self) -> None:
        if self.min_x >= self.max_x or self.min_y >= self.max_y:
            raise InvalidParameterError(
                f"cost region must have positive area: {self}"
            )
        if math.isnan(self.multiplier) or self.multiplier < 1.0:
            raise InvalidParameterError(
                f"cost multiplier must be >= 1.0: {self}"
            )

    @property
    def is_blocking(self) -> bool:
        """True when the region is an ``inf``-cost hard blockage."""
        return math.isinf(self.multiplier)

    def contains_point(self, point: Tuple[float, float]) -> bool:
        """Is ``point`` strictly inside the region?"""
        return (
            self.min_x < point[0] < self.max_x
            and self.min_y < point[1] < self.max_y
        )


def effective_regions(
    cost_regions: Sequence[CostRegion],
) -> Tuple[List[CostRegion], List[CostRegion]]:
    """Split regions into ``(blocking, weighted)``, dropping identities.

    ``blocking`` holds the ``inf``-multiplier regions (they behave as
    obstacles), ``weighted`` the finite multipliers ``> 1``.  Regions
    with ``multiplier == 1.0`` appear in neither: they must not even
    contribute grid lines, so an all-ones cost map reproduces the
    uncosted grid exactly.
    """
    blocking: List[CostRegion] = []
    weighted: List[CostRegion] = []
    for region in cost_regions:  # lint: disable=R103 (one classification per region; grid-construction time)
        if region.is_blocking:
            blocking.append(region)
        elif region.multiplier != 1.0:  # lint: disable=R002 (1.0 is the exact identity sentinel; near-1 multipliers are real factors)
            weighted.append(region)
    return blocking, weighted


def region_grid(
    net: Net,
    obstacles: Sequence = (),
    cost_regions: Sequence[CostRegion] = (),
) -> GridGraph:
    """The routing grid for ``net`` with blockages and cost regions.

    Grid lines run through every terminal coordinate and every
    (effective) region boundary, so routes can hug blockages and
    region edges; obstacle interiors are unroutable and weighted
    interiors carry their multiplier.  ``obstacles`` accepts any
    rectangle-like objects with ``min_x``/``min_y``/``max_x``/``max_y``
    attributes (:class:`~repro.steiner.obstacles.Obstacle` or blocking
    :class:`CostRegion` instances).  Terminals strictly inside a
    blockage are rejected; terminals inside a weighted region are fine
    (their wires are merely expensive).
    """
    blocking, weighted = effective_regions(cost_regions)
    blockers = list(obstacles) + blocking
    points = [net.point(node) for node in range(net.num_terminals)]
    for rect in blockers:  # lint: disable=R103 (terminal containment scan; grid-construction time)
        for node, point in enumerate(points):
            if (
                rect.min_x < point[0] < rect.max_x
                and rect.min_y < point[1] < rect.max_y
            ):
                raise InvalidParameterError(
                    f"terminal {node} at {point} lies inside {rect}"
                )
    xs, ys = hanan_coordinates(points)
    rects = blockers + weighted
    extra_xs = {r.min_x for r in rects} | {r.max_x for r in rects}
    extra_ys = {r.min_y for r in rects} | {r.max_y for r in rects}
    grid = GridGraph(
        sorted(set(xs) | extra_xs),
        sorted(set(ys) | extra_ys),
    )
    grid.terminal_ids = {
        node: grid.id_at(net.point(node)) for node in range(net.num_terminals)
    }
    for rect in blockers:  # lint: disable=R103 (vectorized edge blocking per rectangle; grid-construction time)
        grid.add_obstacle(rect.min_x, rect.min_y, rect.max_x, rect.max_y)
    for region in weighted:  # lint: disable=R103 (vectorized factor registration per region; grid-construction time)
        grid.add_cost_region(
            region.min_x,
            region.min_y,
            region.max_x,
            region.max_y,
            region.multiplier,
        )
    return grid
