"""Route-segment export: trees as physically routable wire runs.

A :class:`~repro.steiner.bkst.SteinerTree` is a set of unit grid edges —
fine for cost arithmetic, noisy for anything downstream (DEF-style
routing dumps, renderers, sanity diffs against a router).  This module
flattens a tree's edge set into :class:`RouteSegment` runs: maximal
axis-aligned horizontal/vertical stretches with collinear adjacent grid
edges merged.  Merging never moves a wire, so the summed geometric
length of the segments equals the tree's total wire length (and
therefore its cost on an uncosted grid) — exactly so on the integer
coordinates the benchmark instances use, and up to float associativity
on arbitrary ones (a merged run's length is the difference of its
endpoints, not the re-summed member edges).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.observability import incr, tracing_active
from repro.steiner.grid_graph import GridGraph

__all__ = ["RouteSegment", "route_segments"]


@dataclass(frozen=True)
class RouteSegment:
    """One maximal axis-aligned wire run, endpoint coordinates sorted.

    Horizontal runs have ``y1 == y2`` and ``x1 < x2``; vertical runs
    have ``x1 == x2`` and ``y1 < y2``.
    """

    x1: float
    y1: float
    x2: float
    y2: float

    @property
    def is_horizontal(self) -> bool:
        return self.y1 == self.y2

    @property
    def length(self) -> float:
        return abs(self.x2 - self.x1) + abs(self.y2 - self.y1)

    def as_dict(self) -> Dict[str, float]:
        """JSON-friendly form (the CLI's segment list rows)."""
        return {"x1": self.x1, "y1": self.y1, "x2": self.x2, "y2": self.y2}


def _merge_runs(cells: List[int]) -> List[Tuple[int, int]]:
    """Merge sorted unit intervals ``[c, c+1]`` into maximal runs."""
    runs: List[Tuple[int, int]] = []
    for cell in cells:
        if runs and runs[-1][1] == cell:
            runs[-1] = (runs[-1][0], cell + 1)
        else:
            runs.append((cell, cell + 1))
    return runs


def route_segments(
    grid: GridGraph, edges: List[Tuple[int, int]]
) -> List[RouteSegment]:
    """Collinear-merged wire runs covering ``edges`` exactly once.

    Horizontal segments come first (by row, then start column), then
    vertical ones (by column, then start row) — a stable order for
    golden files.  Runs merge straight through T-junctions and
    crossings; only collinearity matters.
    """
    ncols = grid.num_cols
    horizontal: Dict[int, List[int]] = {}
    vertical: Dict[int, List[int]] = {}
    for u, v in edges:
        a, b = (u, v) if u < v else (v, u)
        row, col = divmod(a, ncols)
        if b == a + 1:
            horizontal.setdefault(row, []).append(col)
        elif b == a + ncols:
            vertical.setdefault(col, []).append(row)
        else:
            raise ValueError(f"({u}, {v}) is not a grid edge")
    segments: List[RouteSegment] = []
    for row in sorted(horizontal):
        y = grid.ys[row]
        for start, stop in _merge_runs(sorted(horizontal[row])):
            segments.append(
                RouteSegment(grid.xs[start], y, grid.xs[stop], y)
            )
    for col in sorted(vertical):
        x = grid.xs[col]
        for start, stop in _merge_runs(sorted(vertical[col])):
            segments.append(
                RouteSegment(x, grid.ys[start], x, grid.ys[stop])
            )
    if tracing_active():
        incr("route.segments", len(segments))
    return segments
