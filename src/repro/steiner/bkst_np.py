"""Vectorized BKST backend — identical trees, numpy inner loops.

The construction driver (pair heap, corridor realisation, restart loop)
is shared with :mod:`repro.steiner.bkst`; this module only swaps in a
:class:`_GridForestNP` whose hot paths — the per-node source-distance
table and the batched pair-distance gathers feeding the heap — run as
numpy array operations over the grid's cached coordinate vectors.

Every replaced loop computes elementwise-identical IEEE floats (the
same subtract/abs/add per element, only batched), and heap entries are
pushed in the same counter order, so the pop sequence, the feasibility
decisions, and the final tree match the reference bit for bit.  The
differential harness in ``tests/test_backends_differential.py`` holds
the two backends to that claim.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Set

import numpy as np

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net
from repro.observability import span, tracing_active
from repro.runtime.budget import Budget, active_budget
from repro.steiner.bkst import SteinerTree, _bkst_attempts, _GridForest
from repro.steiner.grid_graph import GridGraph


_SMALL = 12
"""Below this many candidates the scalar loop beats array dispatch."""


class _GridForestNP(_GridForest):
    """BKRUS-style grid bookkeeping with vectorized distance kernels.

    On top of the base class, a node-indexed component-label array
    (``comp_arr[x]`` is x's current union-find root) turns the hot
    "which candidates are still foreign?" filter into one gather; it is
    maintained by relabeling the absorbed side of each union, which the
    merge already holds as an array.
    """

    def __init__(self, grid: GridGraph, source_gid: int) -> None:
        super().__init__(grid, source_gid)
        xv, yv = grid.node_coordinate_arrays()
        # Same |x - sx| + |y - sy| per node as the base class loop, in
        # one fused pass over the cached coordinate vectors.
        sx, sy = grid.coordinate(source_gid)
        self.source_dist = np.abs(xv - sx) + np.abs(yv - sy)
        self.comp_arr = np.arange(grid.num_nodes, dtype=np.int64)

    def pair_distances(self, node: int, others: Sequence[int]) -> List[float]:
        if len(others) < _SMALL:
            return super().pair_distances(node, others)
        return self.grid.manhattan_many(node, others).tolist()

    def unconnected_filter(
        self, node: int, candidates: Sequence[int]
    ) -> List[int]:
        if len(candidates) < _SMALL:
            return super().unconnected_filter(node, candidates)
        comp = self.comp_arr
        cand = np.fromiter(
            candidates, dtype=np.int64, count=len(candidates)
        )
        return cand[comp[cand] != comp[node]].tolist()

    def merge_edge(self, u: int, v: int) -> bool:
        """Base-class merge plus the component-label maintenance.

        Same array expressions as :meth:`_GridForest.merge_edge` — the
        P/r updates must stay float-identical — with broadcast indexing
        in place of ``np.ix_`` and a relabel of the absorbed side.
        """
        sets = self.sets
        comp = self.comp_arr
        root_u = comp[u]
        root_v = comp[v]
        if root_u == root_v:
            return False
        d = self.grid.edge_cost(u, v)
        mu = np.asarray(sets.members_view(u), dtype=np.int64)
        mv = np.asarray(sets.members_view(v), dtype=np.int64)
        P = self.P
        cross = P[mu, u][:, None] + d + P[v, mv][None, :]
        P[mu[:, None], mv[None, :]] = cross
        P[mv[:, None], mu[None, :]] = cross.T
        self.r[mu] = np.maximum(self.r[mu], cross.max(axis=1))
        self.r[mv] = np.maximum(self.r[mv], cross.max(axis=0))
        sets.union(u, v)
        root = sets.find(u)
        if root == root_u:
            comp[mv] = root
        else:
            comp[mu] = root
        self.edges.append((u, v) if u < v else (v, u))
        return True


def bkst_np(
    net: Net,
    eps: float,
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> SteinerTree:
    """Vectorized twin of :func:`repro.steiner.bkst.bkst`.

    Same tree, same trace counters, same exceptions; see the module
    docstring for the exactness argument.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    if budget is None:
        budget = active_budget()
    bound = net.path_bound(eps) if math.isfinite(eps) else math.inf

    prewire: Set[int] = set()
    traced = tracing_active()
    with span("bkst"):
        return _bkst_attempts(
            net, bound, prewire, tolerance, traced, budget,
            forest_cls=_GridForestNP,
        )


def bkst_np_cost(net: Net, eps: float) -> float:
    """Cost of the vectorized-backend BKST tree for ``(net, eps)``."""
    return bkst_np(net, eps).cost
