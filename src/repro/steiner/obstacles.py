"""Obstacle-aware routing substrate (channel-intersection-style graphs).

Section 3.3 notes BKST can run "on a channel intersection graph or on a
Hanan's grid graph".  Channel-intersection graphs arise when macros
block parts of the plane: routing happens in the channels between
obstacles, and the graph's lines are the terminal coordinates *plus*
the obstacle boundaries.  This module builds that substrate and
provides obstacle-aware tree constructions on it:

* :func:`obstacle_grid` — the extended grid with interior edges of every
  obstacle removed (boundary edges stay routable);
* :func:`obstacle_spt` — the union of grid shortest paths from the
  source (minimum-radius anchor);
* :func:`obstacle_mst` — Kruskal over terminals with grid shortest-path
  distances, realised as grid routes with cycle edges skipped (a
  low-cost anchor analogous to the MST);
* :func:`bkst_obstacles` — the bounded path length Steiner construction
  on blocked and weighted grids, where feasibility and the eps bound
  are evaluated on *costed* shortest-path lengths
  (:class:`~repro.steiner.regions.CostRegion` multipliers; obstacles
  are the infinite-cost degenerate case).

All constructions return :class:`~repro.steiner.bkst.SteinerTree`
objects, so the validation/rendering machinery applies throughout.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.backends import use_numpy
from repro.core.disjoint_set import DisjointSet
from repro.core.exceptions import InfeasibleError, InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.observability import incr, span, tracing_active
from repro.runtime.budget import Budget, active_budget
from repro.steiner.bkst import (
    SteinerTree,
    _attach_leftovers,
    _GridForest,
    _PathRealiser,
    bkst,
)
from repro.steiner.bkst_np import _GridForestNP, bkst_np
from repro.steiner.grid_graph import GridGraph
from repro.steiner.regions import CostRegion, effective_regions, region_grid


@dataclass(frozen=True)
class Obstacle:
    """A rectangular blockage (a macro, a pre-route, a keep-out).

    Rectangles must have strictly positive area: a zero-width or
    zero-height "obstacle" would inject grid lines into the routing
    graph yet block nothing (only edges crossing the *open* interior
    are removed), which is never what the caller meant.
    """

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise InvalidParameterError(f"inverted obstacle: {self}")
        if self.min_x == self.max_x or self.min_y == self.max_y:
            raise InvalidParameterError(
                f"obstacle must have positive area: {self}"
            )

    def contains_point(self, point: Tuple[float, float]) -> bool:
        """Is ``point`` strictly inside the blockage?"""
        return (
            self.min_x < point[0] < self.max_x
            and self.min_y < point[1] < self.max_y
        )


def obstacle_grid(net: Net, obstacles: Sequence[Obstacle]) -> GridGraph:
    """The channel-intersection-style grid for ``net`` and ``obstacles``.

    Grid lines run through every terminal coordinate and every obstacle
    boundary, so routes can hug blockages; edges through obstacle
    interiors are removed.  Terminals inside an obstacle are rejected.
    The cost-region generalisation is
    :func:`~repro.steiner.regions.region_grid`, of which this is the
    no-regions special case.
    """
    return region_grid(net, obstacles, ())


def _route_edges(
    grid: GridGraph,
    walk: List[int],
    sets: DisjointSet,
    edges: List[Tuple[int, int]],
) -> None:
    for u, v in zip(walk, walk[1:]):
        if sets.union(u, v):
            edges.append((min(u, v), max(u, v)))


def _parent_walk(parent: Dict[int, int], target: int) -> List[int]:
    """The root-to-``target`` node walk of one Dijkstra parent tree."""
    walk = [target]
    while parent[walk[-1]] != -1:  # lint: disable=R103 (walk length is bounded by the grid diameter; no solver work per step)
        walk.append(parent[walk[-1]])
    walk.reverse()
    return walk


def obstacle_spt(net: Net, obstacles: Sequence[Obstacle]) -> SteinerTree:
    """Union of grid shortest paths from the source to every sink.

    The minimum-radius construction on the blocked substrate: every
    sink's tree path is a shortest routable path (paths to different
    sinks share prefixes where Dijkstra's parents coincide).  The
    parent tree comes from
    :meth:`~repro.steiner.grid_graph.GridGraph.dijkstra_tree`, whose
    exact ``(dist, node)`` tie-breaking makes the result a
    deterministic function of the instance — no dependence on heap or
    neighbor iteration order.
    """
    grid = obstacle_grid(net, obstacles)
    source_gid = grid.terminal_ids[SOURCE]
    sets = DisjointSet(grid.num_nodes)
    edges: List[Tuple[int, int]] = []
    # One Dijkstra, shared parents -> a genuine shortest path tree.
    _, parent = grid.dijkstra_tree(source_gid)
    for node in range(1, net.num_terminals):
        gid = grid.terminal_ids[node]
        if gid not in parent:
            raise InfeasibleError(f"sink {node} is walled off by obstacles")
        _route_edges(grid, _parent_walk(parent, gid), sets, edges)
    return SteinerTree(net, grid, edges)


def obstacle_mst(net: Net, obstacles: Sequence[Obstacle]) -> SteinerTree:
    """Kruskal over terminals with shortest routable distances.

    Edge weights are grid shortest-path lengths; accepted edges are
    realised as grid routes with cycle edges skipped, so shared channel
    segments are reused (the result is a Steiner tree, usually cheaper
    than the sum of its pairwise routes).

    One Dijkstra pass per terminal supplies every pairwise length *and*
    (via the memoized parent maps) every accepted route — previously
    the O(T^2) pair loop ran a fresh search per pair plus another per
    accepted edge.  The trees are identical: a pair's route is exactly
    the parent walk of the search rooted at its first terminal.
    """
    grid = obstacle_grid(net, obstacles)
    terminal_gids = [grid.terminal_ids[n] for n in range(net.num_terminals)]
    searches: Dict[int, Tuple[Dict[int, float], Dict[int, int]]] = {}

    def search_from(a: int) -> Tuple[Dict[int, float], Dict[int, int]]:
        if a not in searches:
            searches[a] = grid.dijkstra_tree(a)
        return searches[a]

    pairs = []
    for i, a in enumerate(terminal_gids):
        dist, _ = search_from(a)
        for b in terminal_gids[i + 1 :]:
            pairs.append((dist.get(b, math.inf), a, b))
    pairs.sort()
    sets = DisjointSet(grid.num_nodes)
    edges: List[Tuple[int, int]] = []
    for length, a, b in pairs:
        if math.isinf(length):
            raise InfeasibleError("obstacles disconnect the terminals")
        if sets.connected(a, b):
            continue
        _, parent = search_from(a)
        # Route a -> b, matching the historical traversal direction:
        # _route_edges skips cycle edges as it walks, so the direction
        # decides which edge of a re-entered component is kept.
        _route_edges(grid, _parent_walk(parent, b)[::-1], sets, edges)
    tree = SteinerTree(net, grid, edges)
    if not tree.is_connected_tree():
        raise InfeasibleError("obstacle MST failed to connect all terminals")
    return tree


def bkst_obstacles(
    net: Net,
    eps: float,
    obstacles: Sequence[Obstacle] = (),
    cost_regions: Sequence[CostRegion] = (),
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> SteinerTree:
    """Bounded path length Steiner tree on a blocked, weighted grid.

    The obstacle-aware sibling of :func:`~repro.steiner.bkst.bkst`:
    every sink's *costed* tree path from the source is at most
    ``(1 + eps) * R`` where ``R`` is the costed shortest-path radius —
    the distance to the farthest sink as actually routable around
    obstacles and through weighted regions (the geometric radius may be
    unreachable).  Feasibility runs the BKRUS (3-a)/(3-b) conditions on
    costed lengths throughout, and the returned tree carries
    ``bound_radius = R`` so :meth:`SteinerTree.satisfies_bound` and the
    ``REPRO_CHECK_INVARIANTS`` contract check the same costed bound.

    Construction: Kruskal-ordered terminal pairs keyed on costed
    shortest-path distances (one Dijkstra per terminal, parent maps
    memoized), each accepted pair realised as the cheapest feasible
    corridor along its shortest route; stranded fragments are completed
    by the corridor router, and a restart loop pre-wires stranded sinks
    along the source's shortest-path tree (each pre-wired path costs at
    most ``R``, so the all-prewired limit is always feasible).

    With no obstacles and no effective cost regions (all multipliers
    ``1.0``), delegates to the plain Hanan-grid construction of the
    active backend — bit-identical trees by construction.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    blocking, weighted = effective_regions(cost_regions)
    if not obstacles and not blocking and not weighted:
        if use_numpy():
            return bkst_np(net, eps, tolerance=tolerance, budget=budget)
        return bkst(net, eps, tolerance=tolerance, budget=budget)
    if budget is None:
        budget = active_budget()
    grid = region_grid(net, obstacles, cost_regions)
    traced = tracing_active()
    forest_cls = _GridForestNP if use_numpy() else _GridForest
    with span("bkst_obstacles"):
        if traced:
            incr("bkst.grid_nodes", grid.num_nodes)
            incr("route.blocked_edges", grid.num_blocked_edges)
            incr("route.costed_edges", grid.num_costed_edges)
        return _bkst_obstacle_attempts(
            net, eps, grid, tolerance, traced, budget, forest_cls
        )


def _bkst_obstacle_attempts(
    net: Net,
    eps: float,
    grid: GridGraph,
    tolerance: float,
    traced: bool,
    budget: Optional[Budget],
    forest_cls: type,
) -> SteinerTree:
    """Restart loop of :func:`bkst_obstacles` (split out for span scope)."""
    source_gid = grid.terminal_ids[SOURCE]
    source_dist, source_parent = grid.dijkstra_tree(source_gid)
    for node in range(1, net.num_terminals):  # lint: disable=R103 (one dict probe per sink)
        if grid.terminal_ids[node] not in source_dist:
            raise InfeasibleError(f"sink {node} is walled off by obstacles")
    radius = max(
        source_dist[grid.terminal_ids[node]]
        for node in range(1, net.num_terminals)
    )
    bound = (1.0 + eps) * radius if math.isfinite(eps) else math.inf

    prewire: Set[int] = set()
    for attempt in range(net.num_terminals + 1):
        if traced and attempt > 0:
            incr("bkst.restarts")
        tree, stranded = _build_costed(
            net, grid, bound, radius, prewire, source_dist, source_parent,
            tolerance, traced, budget, forest_cls,
        )
        if tree is not None:
            if not tree.is_connected_tree():
                raise InfeasibleError(
                    "bkst_obstacles produced a disconnected or cyclic result"
                )
            if (
                math.isfinite(bound)
                and tree.longest_sink_path() > bound + 1e-6
            ):
                raise InfeasibleError(
                    "bkst_obstacles result violates the costed path bound "
                    "— internal logic error"
                )
            return tree
        if not stranded or stranded <= prewire:
            break
        prewire |= stranded
    raise InfeasibleError(
        "bkst_obstacles failed to converge — internal logic error"
    )


def _build_costed(
    net: Net,
    grid: GridGraph,
    bound: float,
    radius: float,
    prewire: Set[int],
    source_dist: Dict[int, float],
    source_parent: Dict[int, int],
    tolerance: float,
    traced: bool,
    budget: Optional[Budget],
    forest_cls: type,
) -> "Tuple[SteinerTree | None, Set[int]]":
    """One costed construction attempt.

    Returns ``(tree, set())`` on success or ``(None, stranded_gids)``
    when some sinks could not be feasibly routed (restart signal).
    """
    source_gid = grid.terminal_ids[SOURCE]
    forest = forest_cls(grid, source_gid)
    # The forest's geometric source distances are unreachable around
    # obstacles; feasibility witnesses must use the costed ones.
    costed = np.full(grid.num_nodes, math.inf)
    for node, value in source_dist.items():  # lint: disable=R103 (one array store per node)
        costed[node] = value
    forest.source_dist = costed  # lint: disable=R004 (the forest is private to this attempt; its geometric distances are meaningless on a blocked grid)
    terminals = set(grid.terminal_ids.values())
    active: Set[int] = set(terminals)

    def splice_feasible(z: int, w: int, length: float) -> bool:
        return forest.feasible_splice(z, w, length, bound, tolerance)

    realiser = _PathRealiser(
        grid, forest, terminals, active, source_gid, splice_feasible
    )

    def best_corridor_along(
        walk: List[int], a: int, b: int
    ) -> "List[int] | None":
        """Cheapest feasible corridor along one concrete node walk."""
        corridors = sorted(
            realiser._corridors(walk, a, b), key=lambda item: item[0]
        )
        for length, segment in corridors:
            if splice_feasible(segment[0], segment[-1], length):
                return segment
        return None

    counter = itertools.count()
    heap: List[Tuple[float, int, int, int]] = []
    deferred: List[Tuple[float, int, int]] = []

    def merge_path(nodes: List[int]) -> None:
        if traced:
            incr("bkst.steiner_merges")
        for u, v in zip(nodes, nodes[1:]):
            forest.merge_edge(u, v)
        active.update(nodes)
        while deferred:
            d, da, db = deferred.pop()
            if not forest.connected(da, db):
                heapq.heappush(heap, (d, next(counter), da, db))

    # Pre-wire previously stranded sinks along the source's shortest
    # path tree, nearest first so earlier runs are splice targets for
    # later ones rather than blockers.  A pre-wired sink's tree path is
    # its costed shortest path (<= radius <= bound), so pre-wiring
    # never violates the bound, and the all-prewired limit — the
    # shortest path tree union — is always feasible.
    stranded: Set[int] = set()
    for gid in sorted(prewire, key=lambda g: (source_dist[g], g)):
        if budget is not None:
            budget.checkpoint()
        if forest.connected(source_gid, gid):
            continue
        walk = _parent_walk(source_parent, gid)
        segment = best_corridor_along(walk, source_gid, gid)
        if segment is None:
            # Another unconnected terminal sits on the walk; pre-wire
            # it too on the next attempt (it is strictly nearer the
            # source, so the sorted order wires it first).
            for node in walk:  # lint: disable=R103 (one membership test per walk node)
                if node in terminals and node != source_gid:
                    stranded.add(node)
            stranded.add(gid)
            continue
        merge_path(segment)
    if stranded:
        return None, stranded | prewire

    # Kruskal-ordered terminal pairs on costed shortest-path lengths
    # (one memoized Dijkstra per terminal).
    searches: Dict[int, Tuple[Dict[int, float], Dict[int, int]]] = {}

    def search_from(a: int) -> Tuple[Dict[int, float], Dict[int, int]]:
        if a not in searches:
            searches[a] = grid.dijkstra_tree(a)
        return searches[a]

    ordered = sorted(terminals)
    for i, a in enumerate(ordered):
        if budget is not None:
            budget.checkpoint()
        dist, _ = search_from(a)
        for b in ordered[i + 1 :]:  # lint: disable=R103 (one heap push per pair; the enclosing loop checkpoints per terminal)
            if b in dist and not forest.connected(a, b):
                heapq.heappush(
                    heap, (dist[b], next(counter), a, b)
                )

    def all_terminals_connected() -> bool:
        return all(forest.connected(source_gid, t) for t in terminals)

    spanning = all_terminals_connected()
    while heap and not spanning:
        if budget is not None:
            budget.checkpoint()
        d, _, a, b = heapq.heappop(heap)
        if forest.connected(a, b):
            continue
        if traced:
            incr("bkst.pairs_tried")
        if not splice_feasible(a, b, d):
            if traced:
                incr("bkst.bound_rejections")
            continue
        _, parent = search_from(a)
        segment = best_corridor_along(_parent_walk(parent, b), a, b)
        if segment is None:
            deferred.append((d, a, b))
        else:
            merge_path(segment)
            spanning = all_terminals_connected()

    if not all_terminals_connected():
        stranded = _attach_leftovers(
            realiser, merge_path, terminals, forest, source_gid, bound,
            tolerance,
        )
        if stranded:
            return None, stranded | prewire

    return SteinerTree(net, grid, forest.edges, bound_radius=radius), set()


def total_blocked_area(obstacles: Iterable[Obstacle]) -> float:
    """Area of the *union* of the obstacle rectangles.

    Computed on the compressed coordinate grid, so overlapping
    obstacles are counted once (the sum of individual areas previously
    reported here double-counted overlaps).
    """
    rectangles = list(obstacles)
    if not rectangles:
        return 0.0
    xs = sorted(
        {o.min_x for o in rectangles} | {o.max_x for o in rectangles}
    )
    ys = sorted(
        {o.min_y for o in rectangles} | {o.max_y for o in rectangles}
    )
    total = 0.0
    for i in range(len(xs) - 1):
        for j in range(len(ys) - 1):
            covered = any(
                o.min_x <= xs[i]
                and xs[i + 1] <= o.max_x
                and o.min_y <= ys[j]
                and ys[j + 1] <= o.max_y
                for o in rectangles
            )
            if covered:
                total += (xs[i + 1] - xs[i]) * (ys[j + 1] - ys[j])
    return total
