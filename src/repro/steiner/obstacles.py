"""Obstacle-aware routing substrate (channel-intersection-style graphs).

Section 3.3 notes BKST can run "on a channel intersection graph or on a
Hanan's grid graph".  Channel-intersection graphs arise when macros
block parts of the plane: routing happens in the channels between
obstacles, and the graph's lines are the terminal coordinates *plus*
the obstacle boundaries.  This module builds that substrate and
provides obstacle-aware tree constructions on it:

* :func:`obstacle_grid` — the extended grid with interior edges of every
  obstacle removed (boundary edges stay routable);
* :func:`obstacle_spt` — the union of grid shortest paths from the
  source (minimum-radius anchor);
* :func:`obstacle_mst` — Kruskal over terminals with grid shortest-path
  distances, realised as grid routes with cycle edges skipped (a
  low-cost anchor analogous to the MST).

Both return :class:`~repro.steiner.bkst.SteinerTree` objects, so all
validation/rendering machinery applies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple

from repro.core.disjoint_set import DisjointSet
from repro.core.exceptions import InfeasibleError, InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.steiner.bkst import SteinerTree
from repro.steiner.grid_graph import GridGraph
from repro.steiner.hanan import hanan_coordinates


@dataclass(frozen=True)
class Obstacle:
    """A rectangular blockage (a macro, a pre-route, a keep-out)."""

    min_x: float
    min_y: float
    max_x: float
    max_y: float

    def __post_init__(self) -> None:
        if self.min_x > self.max_x or self.min_y > self.max_y:
            raise InvalidParameterError(f"inverted obstacle: {self}")

    def contains_point(self, point: Tuple[float, float]) -> bool:
        """Is ``point`` strictly inside the blockage?"""
        return (
            self.min_x < point[0] < self.max_x
            and self.min_y < point[1] < self.max_y
        )


def obstacle_grid(net: Net, obstacles: Sequence[Obstacle]) -> GridGraph:
    """The channel-intersection-style grid for ``net`` and ``obstacles``.

    Grid lines run through every terminal coordinate and every obstacle
    boundary, so routes can hug blockages; edges through obstacle
    interiors are removed.  Terminals inside an obstacle are rejected.
    """
    points = [net.point(node) for node in range(net.num_terminals)]
    for obstacle in obstacles:
        for node, point in enumerate(points):
            if obstacle.contains_point(point):
                raise InvalidParameterError(
                    f"terminal {node} at {point} lies inside {obstacle}"
                )
    xs, ys = hanan_coordinates(points)
    extra_xs = {o.min_x for o in obstacles} | {o.max_x for o in obstacles}
    extra_ys = {o.min_y for o in obstacles} | {o.max_y for o in obstacles}
    grid = GridGraph(
        sorted(set(xs) | extra_xs),
        sorted(set(ys) | extra_ys),
    )
    grid.terminal_ids = {
        node: grid.id_at(net.point(node)) for node in range(net.num_terminals)
    }
    for obstacle in obstacles:
        grid.add_obstacle(
            obstacle.min_x, obstacle.min_y, obstacle.max_x, obstacle.max_y
        )
    return grid


def _route_edges(
    grid: GridGraph,
    walk: List[int],
    sets: DisjointSet,
    edges: List[Tuple[int, int]],
) -> None:
    for u, v in zip(walk, walk[1:]):
        if sets.union(u, v):
            edges.append((min(u, v), max(u, v)))


def obstacle_spt(net: Net, obstacles: Sequence[Obstacle]) -> SteinerTree:
    """Union of grid shortest paths from the source to every sink.

    The minimum-radius construction on the blocked substrate: every
    sink's tree path is a shortest routable path (paths to different
    sinks share prefixes where Dijkstra's parents coincide).
    """
    grid = obstacle_grid(net, obstacles)
    source_gid = grid.terminal_ids[SOURCE]
    sets = DisjointSet(grid.num_nodes)
    edges: List[Tuple[int, int]] = []
    # One Dijkstra, shared parents -> a genuine shortest path tree.
    import heapq

    dist = {source_gid: 0.0}
    parent = {source_gid: -1}
    heap = [(0.0, source_gid)]
    done = set()
    while heap:
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for neighbor, length in grid.neighbors(node):
            candidate = d + length
            if neighbor not in dist or candidate < dist[neighbor] - 1e-12:
                dist[neighbor] = candidate
                parent[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    for node in range(1, net.num_terminals):
        gid = grid.terminal_ids[node]
        if gid not in parent:
            raise InfeasibleError(f"sink {node} is walled off by obstacles")
        walk = [gid]
        while parent[walk[-1]] != -1:
            walk.append(parent[walk[-1]])
        _route_edges(grid, walk, sets, edges)
    return SteinerTree(net, grid, edges)


def obstacle_mst(net: Net, obstacles: Sequence[Obstacle]) -> SteinerTree:
    """Kruskal over terminals with shortest routable distances.

    Edge weights are grid shortest-path lengths; accepted edges are
    realised as grid routes with cycle edges skipped, so shared channel
    segments are reused (the result is a Steiner tree, usually cheaper
    than the sum of its pairwise routes).
    """
    grid = obstacle_grid(net, obstacles)
    terminal_gids = [grid.terminal_ids[n] for n in range(net.num_terminals)]
    pairs = []
    for i, a in enumerate(terminal_gids):
        for b in terminal_gids[i + 1 :]:
            length = grid.shortest_path_length(a, b)
            pairs.append((length, a, b))
    pairs.sort()
    sets = DisjointSet(grid.num_nodes)
    edges: List[Tuple[int, int]] = []
    for length, a, b in pairs:
        if math.isinf(length):
            raise InfeasibleError("obstacles disconnect the terminals")
        if sets.connected(a, b):
            continue
        walk = grid.shortest_path_nodes(a, b)
        _route_edges(grid, walk, sets, edges)
    tree = SteinerTree(net, grid, edges)
    if not tree.is_connected_tree():
        raise InfeasibleError("obstacle MST failed to connect all terminals")
    return tree


def total_blocked_area(obstacles: Iterable[Obstacle]) -> float:
    """Sum of obstacle areas (overlaps counted twice; diagnostic only)."""
    return sum(
        (o.max_x - o.min_x) * (o.max_y - o.min_y) for o in obstacles
    )
