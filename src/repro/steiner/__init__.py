"""Bounded path length Steiner routing on Hanan grids."""

from repro.steiner.bkst import bkst, lub_bkst, SteinerTree
from repro.steiner.grid_graph import GridGraph
from repro.steiner.hanan import hanan_grid, hanan_statistics
from repro.steiner.iterated_one_steiner import (
    PointSteinerTree,
    iterated_one_steiner,
    steiner_ratio,
)
from repro.steiner.obstacles import (
    bkst_obstacles,
    Obstacle,
    obstacle_grid,
    obstacle_mst,
    obstacle_spt,
    total_blocked_area,
)
from repro.steiner.regions import CostRegion, region_grid
from repro.steiner.routes import RouteSegment, route_segments

__all__ = [
    "bkst",
    "lub_bkst",
    "SteinerTree",
    "GridGraph",
    "hanan_grid",
    "hanan_statistics",
    "PointSteinerTree",
    "iterated_one_steiner",
    "steiner_ratio",
    "bkst_obstacles",
    "Obstacle",
    "obstacle_grid",
    "obstacle_mst",
    "obstacle_spt",
    "total_blocked_area",
    "CostRegion",
    "region_grid",
    "RouteSegment",
    "route_segments",
]
