"""Rectilinear grid routing graphs.

A :class:`GridGraph` is the crossing structure of a set of horizontal and
vertical lines — the substrate of Hanan-grid Steiner construction
(Section 3.3) and a stand-in for channel-intersection graphs, which the
paper mentions as the alternative routing graph.

Nodes are integer ids in row-major order (``id = row * num_cols + col``,
row indexing the sorted y values).  Edges connect horizontally and
vertically adjacent crossings and are weighted by geometric distance,
so every distance on the graph is a rectilinear wire length.

Two per-edge annotations modify that base metric:

* **Blocked edges** (:meth:`GridGraph.add_obstacle`) are removed from
  the adjacency entirely — wires cannot cross an obstacle interior.
* **Cost factors** (:meth:`GridGraph.add_cost_region`) multiply an
  edge's geometric length by a region multiplier ``>= 1``; routing
  then minimises *costed* length (:meth:`GridGraph.edge_cost`) while
  the geometric wire length stays available via
  :meth:`GridGraph.edge_length`.  An infinite multiplier degenerates
  to blocking, so obstacles are the ``inf``-cost special case of the
  same registration seam.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import InvalidParameterError

Coordinate = Tuple[float, float]


class GridGraph:
    """Crossing graph of vertical lines ``xs`` and horizontal lines ``ys``."""

    def __init__(self, xs: Sequence[float], ys: Sequence[float]) -> None:
        if not xs or not ys:
            raise InvalidParameterError("grid needs at least one x and one y")
        self.xs = [float(x) for x in xs]
        self.ys = [float(y) for y in ys]
        if sorted(set(self.xs)) != self.xs or sorted(set(self.ys)) != self.ys:
            raise InvalidParameterError("grid lines must be sorted and unique")
        self.num_cols = len(self.xs)
        self.num_rows = len(self.ys)
        self._index: Dict[Coordinate, int] = {}
        for row, y in enumerate(self.ys):
            for col, x in enumerate(self.xs):
                self._index[(x, y)] = row * self.num_cols + col
        # Filled in by hanan_grid(): net node index -> grid node id.
        self.terminal_ids: Dict[int, int] = {}
        # Edges removed by obstacles (canonical (min, max) node pairs).
        self._blocked: set = set()
        # Multiplicative cost factors (canonical edge pair -> factor > 1);
        # absent edges cost their geometric length.
        self._cost: Dict[Tuple[int, int], float] = {}
        # Lazily built per-node coordinate arrays (node id -> x / y).
        self._node_xy: Optional[Tuple[np.ndarray, np.ndarray]] = None

    # ------------------------------------------------------------------
    # Identity and geometry
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.num_rows * self.num_cols

    @property
    def num_edges(self) -> int:
        return self.num_rows * (self.num_cols - 1) + self.num_cols * (
            self.num_rows - 1
        )

    def coordinate(self, node: int) -> Coordinate:
        row, col = divmod(node, self.num_cols)
        return (self.xs[col], self.ys[row])

    def id_at(self, point: Coordinate) -> int:
        key = (float(point[0]), float(point[1]))
        if key not in self._index:
            raise InvalidParameterError(f"{point} is not a grid crossing")
        return self._index[key]

    def row_col(self, node: int) -> Tuple[int, int]:
        return divmod(node, self.num_cols)

    def manhattan(self, a: int, b: int) -> float:
        ax, ay = self.coordinate(a)
        bx, by = self.coordinate(b)
        return abs(ax - bx) + abs(ay - by)

    def node_coordinate_arrays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Per-node coordinate vectors ``(x, y)``, node-id indexed.

        Built once and cached — the grid's lines are immutable.  Callers
        must not mutate the returned arrays.
        """
        if self._node_xy is None:
            xv = np.tile(np.asarray(self.xs, dtype=np.float64), self.num_rows)
            yv = np.repeat(np.asarray(self.ys, dtype=np.float64), self.num_cols)
            self._node_xy = (xv, yv)
        return self._node_xy

    def manhattan_many(self, node: int, others: Sequence[int]) -> np.ndarray:
        """``manhattan(node, o)`` for every ``o`` — elementwise identical
        to the scalar method (same subtract/abs/add operations)."""
        xv, yv = self.node_coordinate_arrays()
        idx = np.asarray(others, dtype=np.int64)
        return np.abs(xv[idx] - xv[node]) + np.abs(yv[idx] - yv[node])

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def neighbors(self, node: int) -> Iterator[Tuple[int, float]]:
        """Adjacent crossings with *costed* edge lengths.

        Blocked edges are omitted; edges inside a cost region carry
        their geometric length times the accumulated region factor
        (identical to the plain length on an uncosted grid).
        """
        row, col = divmod(node, self.num_cols)
        candidates = []
        if col > 0:
            candidates.append((node - 1, self.xs[col] - self.xs[col - 1]))
        if col + 1 < self.num_cols:
            candidates.append((node + 1, self.xs[col + 1] - self.xs[col]))
        if row > 0:
            candidates.append(
                (node - self.num_cols, self.ys[row] - self.ys[row - 1])
            )
        if row + 1 < self.num_rows:
            candidates.append(
                (node + self.num_cols, self.ys[row + 1] - self.ys[row])
            )
        blocked = self._blocked
        cost = self._cost
        for neighbor, length in candidates:
            pair = (node, neighbor) if node < neighbor else (neighbor, node)
            if pair in blocked:
                continue
            if cost:
                length *= cost.get(pair, 1.0)
            yield neighbor, length

    # ------------------------------------------------------------------
    # Obstacles and cost regions
    # ------------------------------------------------------------------
    @property
    def num_blocked_edges(self) -> int:
        return len(self._blocked)

    @property
    def num_costed_edges(self) -> int:
        """Edges carrying a non-unit cost factor."""
        return len(self._cost)

    def is_blocked(self, a: int, b: int) -> bool:
        return (min(a, b), max(a, b)) in self._blocked

    def block_edge(self, a: int, b: int) -> None:
        """Remove one grid edge (must be grid-adjacent)."""
        row_a, col_a = divmod(a, self.num_cols)
        row_b, col_b = divmod(b, self.num_cols)
        adjacent = (row_a == row_b and abs(col_a - col_b) == 1) or (
            col_a == col_b and abs(row_a - row_b) == 1
        )
        if not adjacent:
            raise InvalidParameterError(f"({a}, {b}) is not a grid edge")
        self._blocked.add((min(a, b), max(a, b)))

    def unblock_edge(self, a: int, b: int) -> None:
        self._blocked.discard((min(a, b), max(a, b)))

    def _interior_edges(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> Iterator[Tuple[int, int]]:
        """Canonical edge pairs crossing the *open* rectangle interior.

        Edges along the rectangle boundary are excluded (wires may hug
        an obstacle or region edge), matching channel-intersection-graph
        semantics.
        """
        xs = np.asarray(self.xs)
        ys = np.asarray(self.ys)
        ncols = self.num_cols
        # Horizontal edges: rows strictly inside the y-range crossed with
        # column intervals overlapping the x-range.
        rows = np.flatnonzero((min_y < ys) & (ys < max_y))
        cols = np.flatnonzero((xs[:-1] < max_x) & (xs[1:] > min_x))
        if rows.size and cols.size:
            nodes = (rows[:, None] * ncols + cols[None, :]).ravel()
            yield from zip(nodes.tolist(), (nodes + 1).tolist())
        # Vertical edges, symmetrically.
        vcols = np.flatnonzero((min_x < xs) & (xs < max_x))
        vrows = np.flatnonzero((ys[:-1] < max_y) & (ys[1:] > min_y))
        if vcols.size and vrows.size:
            nodes = (vrows[:, None] * ncols + vcols[None, :]).ravel()
            yield from zip(nodes.tolist(), (nodes + ncols).tolist())

    def add_obstacle(
        self, min_x: float, min_y: float, max_x: float, max_y: float
    ) -> int:
        """Block every grid edge crossing the *open* rectangle interior.

        Edges along the obstacle boundary stay routable (wires may hug
        an obstacle), matching channel-intersection-graph semantics.
        Returns the number of edges newly blocked.
        """
        if min_x > max_x or min_y > max_y:
            raise InvalidParameterError("obstacle rectangle is inverted")
        blocked_before = len(self._blocked)
        self._blocked.update(
            self._interior_edges(min_x, min_y, max_x, max_y)
        )
        return len(self._blocked) - blocked_before

    def add_cost_region(
        self,
        min_x: float,
        min_y: float,
        max_x: float,
        max_y: float,
        multiplier: float,
    ) -> int:
        """Scale every edge crossing the open rectangle interior.

        ``multiplier`` must be ``>= 1``: routing through the region can
        only get more expensive, never cheaper, so costed shortest-path
        distances dominate geometric ones.  ``inf`` degenerates to
        :meth:`add_obstacle` (an unroutable region); ``1.0`` is a no-op
        that leaves the grid bit-identical to an uncosted one.
        Overlapping regions multiply.  Returns the number of edges whose
        factor changed.
        """
        if min_x > max_x or min_y > max_y:
            raise InvalidParameterError("cost region rectangle is inverted")
        multiplier = float(multiplier)
        if math.isnan(multiplier) or multiplier < 1.0:
            raise InvalidParameterError(
                f"cost multiplier must be >= 1.0, got {multiplier}"
            )
        if math.isinf(multiplier):
            return self.add_obstacle(min_x, min_y, max_x, max_y)
        if multiplier == 1.0:  # lint: disable=R002 (1.0 is the exact identity sentinel; near-1 multipliers are real factors)
            return 0
        affected = 0
        for pair in self._interior_edges(min_x, min_y, max_x, max_y):
            self._cost[pair] = self._cost.get(pair, 1.0) * multiplier
            affected += 1
        return affected

    def edge_length(self, a: int, b: int) -> float:
        """Geometric length of one routable grid edge.

        Raises when ``(a, b)`` is not grid-adjacent or is blocked by an
        obstacle; cost factors do not change the result (see
        :meth:`edge_cost` for the routing metric).
        """
        row_a, col_a = divmod(a, self.num_cols)
        row_b, col_b = divmod(b, self.num_cols)
        if row_a == row_b and abs(col_a - col_b) == 1:
            length = abs(self.xs[col_a] - self.xs[col_b])
        elif col_a == col_b and abs(row_a - row_b) == 1:
            length = abs(self.ys[row_a] - self.ys[row_b])
        else:
            raise InvalidParameterError(f"({a}, {b}) is not a grid edge")
        if self._blocked and self.is_blocked(a, b):
            raise InvalidParameterError(f"({a}, {b}) is not a grid edge")
        return length

    def edge_cost(self, a: int, b: int) -> float:
        """Costed length of one routable grid edge.

        Equals :meth:`edge_length` times the edge's accumulated region
        factor — and exactly :meth:`edge_length` on an uncosted grid.
        """
        length = self.edge_length(a, b)
        if not self._cost:
            return length
        pair = (a, b) if a < b else (b, a)
        return length * self._cost.get(pair, 1.0)

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def shortest_path_length(self, a: int, b: int) -> float:
        """Shortest routable *costed* path length between two crossings.

        Equals the Manhattan distance on an unblocked, uncosted grid;
        with obstacles or cost regions present a Dijkstra search runs
        instead.  Returns ``math.inf`` when no route exists.
        """
        if not self._blocked and not self._cost:
            return self.manhattan(a, b)
        dist, _ = self.dijkstra_tree(a)
        return dist.get(b, math.inf)

    def shortest_path_nodes(self, a: int, b: int) -> List[int]:
        """One shortest routable node walk from ``a`` to ``b``.

        Ties are broken exactly like :meth:`dijkstra_tree` (the walk is
        the tree path).  Raises :class:`InvalidParameterError` when
        ``b`` is unreachable.
        """
        _, parent = self.dijkstra_tree(a, target=b)
        if b not in parent:
            raise InvalidParameterError(
                f"no route between {a} and {b} (obstacles disconnect them)"
            )
        walk = [b]
        node = b
        while parent[node] != -1:
            node = parent[node]
            walk.append(node)
        walk.reverse()
        return walk

    def dijkstra_tree(
        self, source: int, target: Optional[int] = None
    ) -> Tuple[Dict[int, float], Dict[int, int]]:
        """Costed shortest-path distances and parents from ``source``.

        Relaxation compares float distances *exactly*; among equal-cost
        predecessors the smallest parent id wins, so the returned tree
        is a deterministic function of the grid alone — independent of
        heap insertion and neighbor iteration order.  Passing ``target``
        stops the scan once that node's entry is final (every candidate
        predecessor sits strictly closer and has already relaxed it).
        Unreachable nodes are absent from both maps.
        """
        dist: Dict[int, float] = {source: 0.0}
        parent: Dict[int, int] = {source: -1}
        heap: List[Tuple[float, int]] = [(0.0, source)]
        done = set()
        while heap:
            d, node = heapq.heappop(heap)
            if node in done:
                continue
            if node == target:
                break
            done.add(node)
            for neighbor, length in self.neighbors(node):
                candidate = d + length
                known = dist.get(neighbor)
                better = known is None or candidate < known
                if not better and candidate == known:  # lint: disable=R002 (exact ties resolve to the smallest parent id; an epsilon would make tie-breaking order-dependent)
                    better = node < parent[neighbor]
                if better:
                    dist[neighbor] = candidate
                    parent[neighbor] = node
                    heapq.heappush(heap, (candidate, neighbor))
        return dist, parent

    def dijkstra_distances(self, source: int) -> Dict[int, float]:
        """Costed shortest-path distances from ``source`` (tests
        cross-check the uncosted case against :meth:`manhattan`)."""
        dist, _ = self.dijkstra_tree(source)
        return dist

    def segment_nodes(self, a: int, b: int) -> List[int]:
        """Grid nodes along the straight segment from ``a`` to ``b``.

        ``a`` and ``b`` must share a row or a column; the result includes
        both endpoints, in walking order.
        """
        row_a, col_a = divmod(a, self.num_cols)
        row_b, col_b = divmod(b, self.num_cols)
        if row_a == row_b:
            step = 1 if col_b >= col_a else -1
            return [
                row_a * self.num_cols + col
                for col in range(col_a, col_b + step, step)
            ]
        if col_a == col_b:
            step = 1 if row_b >= row_a else -1
            return [
                row * self.num_cols + col_a
                for row in range(row_a, row_b + step, step)
            ]
        raise InvalidParameterError(
            f"nodes {a} and {b} are not axis-aligned; no straight segment"
        )

    def corner_candidates(self, a: int, b: int) -> List[int]:
        """The (up to two) L-shape corner crossings between ``a`` and ``b``."""
        row_a, col_a = divmod(a, self.num_cols)
        row_b, col_b = divmod(b, self.num_cols)
        corners = {row_a * self.num_cols + col_b, row_b * self.num_cols + col_a}
        corners.discard(a)
        corners.discard(b)
        if not corners:
            # a and b are axis-aligned: the "corner" degenerates.
            return [a]
        return sorted(corners)

    def l_path_nodes(self, a: int, b: int, corner: int) -> List[int]:
        """Grid nodes of the L-shaped route ``a -> corner -> b``.

        Includes both endpoints once each; the corner appears once.
        """
        first = self.segment_nodes(a, corner)
        second = self.segment_nodes(corner, b)
        return first + second[1:]

    def l_path_toward(
        self, a: int, b: int, prefer_near: Coordinate
    ) -> List[int]:
        """The L-shaped ``a``-``b`` route whose corner is nearer ``prefer_near``.

        Implements the paper's tie rule: "among the two possible L-shaped
        paths, we choose the path whose corner is closer to the source."
        """
        candidates = self.corner_candidates(a, b)
        px, py = float(prefer_near[0]), float(prefer_near[1])

        def corner_key(corner: int) -> Tuple[float, int]:
            cx, cy = self.coordinate(corner)
            return (abs(cx - px) + abs(cy - py), corner)

        corner = min(candidates, key=corner_key)
        return self.l_path_nodes(a, b, corner)

    def is_walk_routable(self, nodes: List[int]) -> bool:
        """True when consecutive nodes are grid-adjacent and unblocked."""
        ncols = self.num_cols
        for u, v in zip(nodes, nodes[1:]):
            row_u, col_u = divmod(u, ncols)
            row_v, col_v = divmod(v, ncols)
            adjacent = (row_u == row_v and abs(col_u - col_v) == 1) or (
                col_u == col_v and abs(row_u - row_v) == 1
            )
            if not adjacent or self.is_blocked(u, v):
                return False
        return True

    def path_cost(self, nodes: List[int]) -> float:
        """Total *costed* length of a node walk along grid edges.

        Equals the total wire length on an uncosted grid.  On an
        unblocked, uncosted grid the per-edge lengths come from one
        vectorized coordinate gather; the running sum stays sequential
        (Python ``sum``) so the float result is identical to the
        edge-at-a-time loop.
        """
        if not self._blocked and not self._cost and len(nodes) > 16:
            idx = np.asarray(nodes, dtype=np.int64)
            rows, cols = np.divmod(idx, self.num_cols)
            hops = np.abs(rows[1:] - rows[:-1]) + np.abs(cols[1:] - cols[:-1])
            if not (hops == 1).all():
                raise InvalidParameterError("walk leaves the grid edges")
            xv, yv = self.node_coordinate_arrays()
            px = xv[idx]
            py = yv[idx]
            lengths = np.abs(px[1:] - px[:-1]) + np.abs(py[1:] - py[:-1])
            total = 0.0
            for length in lengths.tolist():
                total += length
            return total
        total = 0.0
        for u, v in zip(nodes, nodes[1:]):
            total += self.edge_cost(u, v)
        return total


def path_edges(nodes: List[int]) -> List[Tuple[int, int]]:
    """Canonical edge list ``(min, max)`` of a node walk."""
    return [
        (u, v) if u < v else (v, u) for u, v in zip(nodes, nodes[1:])
    ]


def manhattan_between(
    grid: GridGraph, pairs: List[Tuple[int, int]]
) -> List[Tuple[float, int, int]]:
    """(distance, a, b) tuples for a list of grid node pairs."""
    return [(grid.manhattan(a, b), a, b) for a, b in pairs]
