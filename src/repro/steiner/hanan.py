"""Hanan grids (Section 3.3, ref [10]).

Hanan's theorem: an optimal rectilinear Steiner tree exists whose Steiner
points are crossings of the horizontal and vertical lines through the
terminals.  The *Hanan grid* of a terminal set is therefore the graph of
all such crossings with edges between consecutive crossings on each line;
BKST constructs its bounded Steiner trees on this graph.

The paper notes that for regular (standard-cell-like) placements the
crossing count ``m`` stays near ``10 * V`` rather than the worst-case
``V^2``; :func:`hanan_statistics` measures exactly that per instance.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net
from repro.steiner.grid_graph import GridGraph


def hanan_coordinates(
    points: Sequence[Tuple[float, float]],
) -> Tuple[List[float], List[float]]:
    """Sorted unique x and y coordinates of a terminal set."""
    if not points:
        raise InvalidParameterError("cannot build a Hanan grid of nothing")
    xs = sorted({float(p[0]) for p in points})
    ys = sorted({float(p[1]) for p in points})
    return xs, ys


def hanan_grid(net: Net) -> GridGraph:
    """The Hanan grid graph of ``net``'s terminals.

    Every terminal is a grid node; ``GridGraph.terminal_ids`` maps net
    node indices to grid node ids.
    """
    points = [net.point(node) for node in range(net.num_terminals)]
    xs, ys = hanan_coordinates(points)
    grid = GridGraph(xs, ys)
    terminal_ids = {
        node: grid.id_at(net.point(node)) for node in range(net.num_terminals)
    }
    grid.terminal_ids = terminal_ids
    return grid


def hanan_statistics(net: Net) -> Dict[str, int]:
    """Crossing / edge counts of the net's Hanan grid.

    Keys: ``nodes``, ``edges``, ``terminals``, plus the ratio the paper
    quotes (``nodes`` per terminal) rounded down as ``nodes_per_terminal``.
    """
    grid = hanan_grid(net)
    return {
        "nodes": grid.num_nodes,
        "edges": grid.num_edges,
        "terminals": net.num_terminals,
        "nodes_per_terminal": grid.num_nodes // net.num_terminals,
    }
