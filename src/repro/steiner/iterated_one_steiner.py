"""Iterated 1-Steiner (Kahng & Robins) — the unbounded Steiner anchor.

The paper's Table 4 shows BKST beating every spanning heuristic; the
natural question is how close BKST's loose-bound behaviour comes to a
dedicated *unbounded* rectilinear Steiner heuristic.  Iterated
1-Steiner is the classic answer: repeatedly add the single Hanan point
that reduces the MST cost the most, until no candidate helps; then
strip Steiner points that ended up with tree degree <= 2 (they lie on
through-routes and buy nothing).

The result is a spanning tree over terminals plus chosen Steiner
points, wrapped in :class:`PointSteinerTree` (point-based, unlike the
grid-based :class:`~repro.steiner.bkst.SteinerTree`).

Complexity is O(rounds * |candidates| * MST) — fine for the paper's
5-15 sink nets, which is also where the paper ran BKST.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net
from repro.core.tree import RoutingTree
from repro.algorithms.mst import mst
from repro.steiner.hanan import hanan_coordinates

Point = Tuple[float, float]


@dataclass
class PointSteinerTree:
    """A Steiner tree over explicit points (terminals + Steiner nodes).

    ``augmented`` is a net whose first ``base.num_terminals`` nodes are
    the original terminals and whose extra sinks are Steiner points;
    ``tree`` spans it.
    """

    base: Net
    augmented: Net
    tree: RoutingTree
    steiner_points: Tuple[Point, ...]

    @property
    def cost(self) -> float:
        return self.tree.cost

    def sink_path_lengths(self) -> Dict[int, float]:
        """Source-to-sink path lengths for the *original* sinks."""
        paths = self.tree.source_path_lengths()
        return {
            node: float(paths[node])
            for node in range(1, self.base.num_terminals)
        }

    def longest_sink_path(self) -> float:
        return max(self.sink_path_lengths().values())

    def __repr__(self) -> str:
        return (
            f"<PointSteinerTree cost={self.cost:.4g} "
            f"steiner={len(self.steiner_points)}>"
        )


def _augment(base: Net, steiner_points: List[Point]) -> Net:
    points = [base.point(node) for node in range(base.num_terminals)]
    return Net(
        points[0],
        points[1:] + steiner_points,
        metric=base.metric,
        name=base.name,
    )


def _prune_low_degree(
    base: Net, steiner_points: List[Point]
) -> Tuple[Net, RoutingTree, List[Point]]:
    """Drop Steiner points of tree degree <= 2 until none remain."""
    current = list(steiner_points)
    while True:
        augmented = _augment(base, current)
        tree = mst(augmented)
        keep: List[Point] = []
        dropped = False
        for offset, point in enumerate(current):
            node = base.num_terminals + offset
            if tree.degree(node) >= 3:
                keep.append(point)
            else:
                dropped = True
        if not dropped:
            return augmented, tree, current
        current = keep


def iterated_one_steiner(
    net: Net,
    max_rounds: Optional[int] = None,
    tolerance: float = 1e-9,
) -> PointSteinerTree:
    """Run Iterated 1-Steiner on ``net``.

    Parameters
    ----------
    net:
        The net to route (L1; Hanan candidates assume rectilinearity).
    max_rounds:
        Optional cap on Steiner points added (default: until no gain).
    """
    from repro.core.geometry import Metric

    if net.metric is not Metric.L1:
        raise InvalidParameterError(
            "Iterated 1-Steiner uses Hanan candidates (Manhattan metric)"
        )
    chosen: List[Point] = []
    base_cost = mst(net).cost
    rounds = 0
    while max_rounds is None or rounds < max_rounds:
        augmented = _augment(net, chosen)
        current_cost = mst(augmented).cost
        terminal_points = [
            augmented.point(node) for node in range(augmented.num_terminals)
        ]
        xs, ys = hanan_coordinates(terminal_points)
        existing = set(terminal_points)
        best_gain = tolerance
        best_point: Optional[Point] = None
        for x in xs:
            for y in ys:
                candidate = (x, y)
                if candidate in existing:
                    continue
                trial = _augment(net, chosen + [candidate])
                gain = current_cost - mst(trial).cost
                if gain > best_gain:
                    best_gain = gain
                    best_point = candidate
        if best_point is None:
            break
        chosen.append(best_point)
        rounds += 1
    augmented, tree, kept = _prune_low_degree(net, chosen)
    result = PointSteinerTree(
        base=net,
        augmented=augmented,
        tree=tree,
        steiner_points=tuple(kept),
    )
    assert result.cost <= base_cost + 1e-9
    return result


def steiner_ratio(net: Net) -> float:
    """cost(Iterated 1-Steiner) / cost(MST) — at most 1, at least 2/3
    by the rectilinear Steiner ratio theorem (Hwang)."""
    return iterated_one_steiner(net).cost / mst(net).cost
