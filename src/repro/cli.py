"""Command-line interface: ``repro-cli``.

Subcommands
-----------
``route``   — run one algorithm on a benchmark and print its report;
              ``--obstacle``/``--cost-region`` route around blockages
              and through weighted regions (``bkst_obstacles``), and
              ``--segments-json`` exports the tree as collinear-merged
              wire segments.
``solve``   — run one algorithm under a deadline/node budget with an
              optional fallback chain; prints the anytime outcome.
``batch``   — benchmarks x algorithms x eps grid through the parallel
              batch engine (``--n-jobs``), with per-job timing rows and
              optional per-job budgets (``--deadline``, ``--fallback``).
``sweep``   — eps sweep of one algorithm on one benchmark (Figure 9 data).
``table1``  — print the benchmark characteristics table.
``compare`` — run several algorithms on one benchmark side by side.
``lub``     — lower/upper bounded sweep on one benchmark (Table 5 data).
``steiner`` — BKST on a benchmark, with an ASCII plot.
``render``  — write an SVG of any algorithm's tree.
``buffer``  — van Ginneken buffer insertion on a BKRUS tree.
``table``   — regenerate one of the paper's tables (scaled defaults).
``zeroskew`` — exact zero-skew clock tree vs the node-branching LUB tree.
``trace``   — run one job under the span tracer and print the span tree
              with algorithm counters (optionally exporting JSONL).
``bench``   — seeded perf suite writing a machine-readable
              ``BENCH_<suite>.json`` record, with baseline comparison
              (``--compare BASELINE.json --tolerance 0.25``).
``lint``    — project-specific static analysis (file-local rules
              R001-R006 plus whole-program rules R101-R105).
``report``  — stitch benchmarks/results/*.txt into one RESULTS.md.
``serve``   — long-running routing-as-a-service daemon (HTTP/JSON over
              a persistent worker pool; also installed as
              ``repro-serve``; see docs/serving.md).

Examples::

    repro-cli route --benchmark p3 --algorithm bkrus --eps 0.25
    repro-cli route --benchmark rnd8_3 --algorithm bkst_obstacles \
        --obstacle 550,550,850,850 --cost-region 100,100,500,500,2.5 \
        --segments-json routes.json
    repro-cli batch --benchmarks p1,p2,p3 --algorithms mst,bkrus,bprim \
        --eps-list 0.1 0.2 inf --n-jobs 4
    repro-cli sweep --benchmark p4 --algorithm bkrus
    repro-cli compare --benchmark rnd10_3 --eps 0.2 \
        --algorithms bprim,brbc,bkrus,bkh2
    repro-cli table1 --scale 0.2
"""

from __future__ import annotations

import argparse
import math
import os
import sys
from typing import List, Optional

from repro.analysis.metrics import format_eps, tree_longest_path
from repro.analysis.runners import algorithm_names, run, run_many
from repro.analysis.tables import format_table
from repro.analysis.tradeoff import lub_grid, tradeoff_curve
from repro.core.backends import BACKEND_ENV_VAR, BACKENDS
from repro.core.exceptions import ReproError
from repro.instances import registry
from repro.instances.large import table1_row


def _parse_eps(text: str) -> float:
    if text.lower() in ("inf", "infinity", "none"):
        return math.inf
    return float(text)


def _load_net(args: argparse.Namespace):
    return registry.load(args.benchmark, scale=getattr(args, "scale", None))


def _parse_obstacle(text: str):
    from repro.steiner.obstacles import Obstacle

    parts = text.split(",")
    if len(parts) != 4:
        raise argparse.ArgumentTypeError(
            f"expected XMIN,YMIN,XMAX,YMAX, got {text!r}"
        )
    return Obstacle(*(float(p) for p in parts))


def _parse_cost_region(text: str):
    from repro.steiner.regions import CostRegion

    parts = text.split(",")
    if len(parts) != 5:
        raise argparse.ArgumentTypeError(
            f"expected XMIN,YMIN,XMAX,YMAX,MULT, got {text!r}"
        )
    return CostRegion(*(float(p) for p in parts))


def _route_payload(args, net, tree, seconds) -> dict:
    """The ``route --segments-json`` document (segment list + metrics)."""
    segments = tree.route_segments()
    if tree.bound_radius is not None:
        radius = tree.bound_radius
    else:
        radius = net.radius()
    bound = (1.0 + args.eps) * radius if math.isfinite(args.eps) else None
    return {
        "benchmark": net.name or "?",
        "algorithm": args.algorithm,
        "eps": args.eps if math.isfinite(args.eps) else "inf",
        "cost": tree.cost,
        "wire_length": tree.wire_length,
        "longest_sink_path": tree.longest_sink_path(),
        "radius": radius,
        "bound": bound,
        "num_obstacles": len(args.obstacle or ()),
        "num_cost_regions": len(args.cost_region or ()),
        "num_blocked_edges": tree.grid.num_blocked_edges,
        "num_costed_edges": tree.grid.num_costed_edges,
        "total_segment_length": sum(s.length for s in segments),
        "cpu_seconds": seconds,
        "segments": [s.as_dict() for s in segments],
    }


def _cmd_route(args: argparse.Namespace) -> int:
    net = _load_net(args)
    obstacles = list(args.obstacle or ())
    regions = list(args.cost_region or ())
    if obstacles or regions or args.segments_json:
        return _cmd_route_export(args, net, obstacles, regions)
    report = run(args.algorithm, net, args.eps)
    rows = [
        ("algorithm", report.algorithm),
        ("benchmark", report.net_name),
        ("eps", format_eps(report.eps)),
        ("cost", f"{report.cost:.4f}"),
        ("longest path", f"{report.longest_path:.4f}"),
        ("bound", f"{net.path_bound(args.eps):.4f}" if math.isfinite(args.eps) else "inf"),
        ("perf ratio (cost/MST)", f"{report.perf_ratio:.4f}"),
        ("path ratio (path/R)", f"{report.path_ratio:.4f}"),
        ("cpu seconds", f"{report.cpu_seconds:.4f}"),
    ]
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_route_export(args, net, obstacles, regions) -> int:
    """The obstacle/region-aware ``route`` path with segment export.

    Runs the algorithm directly (the report path only keeps summary
    metrics, not the tree), prints the usual report table — unless the
    JSON goes to stdout, which must stay parseable — and writes the
    segment document.
    """
    import json

    from repro.analysis.metrics import timed
    from repro.analysis.runners import get_runner
    from repro.steiner.bkst import SteinerTree

    kwargs = {}
    if obstacles or regions:
        if args.algorithm != "bkst_obstacles":
            raise ReproError(
                "--obstacle/--cost-region need --algorithm bkst_obstacles "
                f"(got {args.algorithm!r})"
            )
        kwargs = {"obstacles": obstacles, "cost_regions": regions}
    tree, seconds = timed(get_runner(args.algorithm), net, args.eps, **kwargs)
    if not isinstance(tree, SteinerTree):
        raise ReproError(
            f"{args.algorithm!r} does not produce grid-realised trees; "
            "segment export needs a Steiner algorithm "
            "(bkst, bkst_np, bkst_obstacles)"
        )
    payload = _route_payload(args, net, tree, seconds)
    to_stdout = args.segments_json in (None, "-")
    if not to_stdout:
        with open(args.segments_json, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
        rows = [
            ("algorithm", args.algorithm),
            ("benchmark", payload["benchmark"]),
            ("eps", format_eps(args.eps)),
            ("cost", f"{payload['cost']:.4f}"),
            ("wire length", f"{payload['wire_length']:.4f}"),
            ("longest path", f"{payload['longest_sink_path']:.4f}"),
            ("bound", f"{payload['bound']:.4f}" if payload["bound"] is not None else "inf"),
            ("obstacles", str(payload["num_obstacles"])),
            ("cost regions", str(payload["num_cost_regions"])),
            ("segments", str(len(payload["segments"]))),
            ("segments written to", args.segments_json),
        ]
        print(format_table(["quantity", "value"], rows))
    else:
        print(json.dumps(payload, indent=2))
    return 0


def _cmd_solve(args: argparse.Namespace) -> int:
    from repro.runtime.budget import Budget
    from repro.runtime.solve import default_policy, run_with_budget, solve

    net = _load_net(args)
    if args.fallback:
        policy = default_policy(
            args.algorithm,
            deadline_seconds=args.deadline,
            max_nodes=args.max_nodes,
        )
        chain = " -> ".join(policy.chain)
        result = solve(net, args.eps, policy)
    else:
        # A one-entry chain through solve() would drop the deadline (the
        # final entry is the always-finishes safety net), so the plain
        # budgeted path goes through run_with_budget instead.
        chain = args.algorithm
        budget = Budget(seconds=args.deadline, max_nodes=args.max_nodes)
        result = run_with_budget(args.algorithm, net, args.eps, budget)
    tree = result.tree
    rows = [
        ("benchmark", net.name or "?"),
        ("eps", format_eps(args.eps)),
        ("chain", chain),
        ("requested algorithm", result.algorithm),
        ("produced by", result.produced_by),
        ("budget exhausted", "yes" if result.exhausted else "no"),
        ("fallback used", "yes" if result.fallback_used else "no"),
        ("cost", f"{tree.cost:.4f}"),
        ("longest path", f"{tree_longest_path(tree):.4f}"),
        (
            "bound",
            f"{net.path_bound(args.eps):.4f}"
            if math.isfinite(args.eps)
            else "inf",
        ),
        ("checkpoints", result.checkpoints),
        ("elapsed s", f"{result.elapsed_seconds:.4f}"),
    ]
    for attempt in result.attempts:
        rows.append(
            (
                f"attempt: {attempt.algorithm}",
                f"{attempt.outcome} ({attempt.elapsed_seconds:.4f}s)",
            )
        )
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_batch(args: argparse.Namespace) -> int:
    from repro.analysis.batch import expand_grid, run_batch
    from repro.core.geometry import distance_cache_info

    nets = [
        registry.load(name.strip(), scale=args.scale)
        for name in args.benchmarks.split(",")
        if name.strip()
    ]
    algorithms = [a.strip() for a in args.algorithms.split(",") if a.strip()]
    eps_values = args.eps_list if args.eps_list else [0.2]
    jobs = expand_grid(
        nets,
        algorithms,
        eps_values,
        budget_seconds=args.deadline,
        max_nodes=args.max_nodes,
        use_fallback=args.fallback,
    )
    result = run_batch(
        jobs,
        n_jobs=args.n_jobs,
        max_attempts=args.max_attempts,
        job_timeout=args.job_timeout,
        retry_backoff=args.retry_backoff,
        store=args.store,
    )
    print(
        format_table(
            [
                "bench",
                "algorithm",
                "eps",
                "cost",
                "perf ratio",
                "path ratio",
                "cpu s",
                "wall s",
                "status",
            ],
            result.rows(),
            title=f"Batch: {len(jobs)} jobs over {len(nets)} benchmark(s), "
            f"n_jobs={result.n_jobs}"
            + (" (fell back to serial)" if result.fell_back_to_serial else ""),
        )
    )
    cache = distance_cache_info()
    print(
        f"\n{len(result.reports)}/{len(jobs)} jobs ok in "
        f"{result.wall_seconds:.3f}s wall "
        f"({result.job_seconds:.3f}s summed job time); "
        f"distance cache: {cache.hits} hits / {cache.misses} misses"
    )
    store_hits = result.batch_counters.get("batch.store_hits")
    if store_hits is not None:
        print(
            f"result store: {store_hits:g} hits / "
            f"{result.batch_counters.get('batch.store_misses', 0):g} "
            f"cold solves"
        )
    exhausted = sum(1 for r in result.records if r.budget_exhausted)
    retried = sum(1 for r in result.records if r.attempts > 1)
    fallbacks = [r for r in result.records if r.fallback_used]
    if exhausted or retried or fallbacks:
        print(
            f"budgets exhausted: {exhausted}; jobs retried: {retried}; "
            f"fallbacks used: {len(fallbacks)}"
        )
    for record in fallbacks:
        print(
            f"  [{record.index}] {record.algorithm} on {record.net_name} "
            f"eps={format_eps(record.eps)} -> {record.fallback_used}"
        )
    for record in result.failures:
        print(
            f"FAILED [{record.index}] {record.algorithm} on "
            f"{record.net_name} eps={format_eps(record.eps)}: {record.error}",
            file=sys.stderr,
        )
        if record.traceback:
            print(record.traceback, file=sys.stderr)
    return 1 if result.failures else 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.store:
        return _cmd_sweep_distributed(args)
    if not args.benchmark:
        print(
            "sweep: --benchmark is required (legacy eps sweep), or pass "
            "--store DIR for a distributed sweep",
            file=sys.stderr,
        )
        return 2
    net = _load_net(args)
    points = tradeoff_curve(net, algorithm=args.algorithm)
    rows = [
        (format_eps(p.eps), p.cost, p.longest_path, p.perf_ratio, p.path_ratio)
        for p in points
    ]
    print(
        format_table(
            ["eps", "cost", "longest path", "perf ratio", "path ratio"],
            rows,
            title=f"{args.algorithm} sweep on {net.name}",
        )
    )
    return 0


def _cmd_sweep_distributed(args: argparse.Namespace) -> int:
    """Crash-safe multi-worker sweep over a shared store directory."""
    from repro.analysis.sweep import SweepGrid, run_sweep

    grid = SweepGrid(
        sizes=tuple(
            int(s.strip()) for s in args.sizes.split(",") if s.strip()
        ),
        cases=args.cases,
        algorithms=tuple(
            a.strip() for a in args.algorithms.split(",") if a.strip()
        ),
        eps_values=tuple(
            _parse_eps(e.strip()) for e in args.eps_values.split(",") if e.strip()
        ),
    )
    result = run_sweep(
        grid,
        store=args.store,
        queue=args.queue,
        workers=args.workers,
        chunk_size=args.chunk_size,
        ttl_seconds=args.ttl,
        max_seconds=args.max_seconds,
    )
    rows = [
        ("total jobs", result.total_jobs),
        ("chunks", f"{result.completed_chunks}/{result.num_chunks}"),
        ("complete", result.complete),
        ("jobs executed (this run)", int(result.counters.get("sweep.jobs_executed", 0))),
        ("store hits (as completed)", result.chunk_hits),
        ("solver runs (as completed)", result.chunk_computed),
        ("failures", result.chunk_failures),
        ("leases reclaimed", int(result.counters.get("lease.reclaimed", 0))),
        ("jobs/second", f"{result.jobs_per_second:.1f}"),
        ("worker exits", ",".join(str(code) for code in result.worker_exits)),
    ]
    print(format_table(["quantity", "value"], rows, title="distributed sweep"))
    return 0 if result.complete and result.chunk_failures == 0 else 1


def _cmd_table1(args: argparse.Namespace) -> int:
    nets = registry.special_benchmarks() + registry.large_benchmarks(
        scale=args.scale
    )
    rows = [table1_row(net) for net in nets]
    print(
        format_table(
            ["bench", "# of pts", "# of edges", "R", "r"],
            rows,
            precision=1,
            title="Table 1: Characteristics of Benchmarks",
        )
    )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    net = _load_net(args)
    names = args.algorithms.split(",")
    reports = run_many(names, net, args.eps)
    rows = [
        (r.algorithm, r.cost, r.perf_ratio, r.path_ratio, r.cpu_seconds)
        for r in reports
    ]
    print(
        format_table(
            ["algorithm", "cost", "perf ratio", "path ratio", "cpu s"],
            rows,
            title=f"{net.name} at eps={format_eps(args.eps)}",
        )
    )
    return 0


def _cmd_lub(args: argparse.Namespace) -> int:
    net = _load_net(args)
    points = lub_grid(net)
    rows = [
        (
            f"{p.eps1:.1f}",
            f"{p.eps2:.1f}",
            p.skew if p.feasible else None,
            p.cost_ratio if p.feasible else None,
        )
        for p in points
    ]
    print(
        format_table(
            ["eps1", "eps2", "s (skew)", "r (cost/MST)"],
            rows,
            title=f"Lower/upper bounded BKRUS on {net.name}",
        )
    )
    return 0


def _cmd_steiner(args: argparse.Namespace) -> int:
    from repro.algorithms.bkrus import bkrus
    from repro.analysis.render import ascii_render
    from repro.steiner.bkst import bkst

    net = _load_net(args)
    steiner = bkst(net, args.eps)
    spanning = bkrus(net, args.eps)
    saving = 100.0 * (1.0 - steiner.cost / spanning.cost)
    print(
        format_table(
            ["quantity", "value"],
            [
                ("benchmark", net.name or "?"),
                ("eps", format_eps(args.eps)),
                ("BKST cost", f"{steiner.cost:.2f}"),
                ("BKRUS cost", f"{spanning.cost:.2f}"),
                ("saving %", f"{saving:.1f}"),
                ("longest sink path", f"{steiner.longest_sink_path():.2f}"),
            ],
        )
    )
    print()
    print(ascii_render(steiner))
    return 0


def _cmd_render(args: argparse.Namespace) -> int:
    from repro.analysis.render import save_svg
    from repro.analysis.runners import get_runner

    net = _load_net(args)
    tree = get_runner(args.algorithm)(net, args.eps)
    save_svg(
        tree,
        args.out,
        title=f"{args.algorithm} on {net.name} (eps={format_eps(args.eps)})",
    )
    print(f"wrote {args.out}")
    return 0


def _cmd_buffer(args: argparse.Namespace) -> int:
    from repro.algorithms.bkrus import bkrus
    from repro.elmore.buffering import (
        BufferType,
        van_ginneken,
        worst_buffered_delay,
    )
    from repro.elmore.parameters import DEFAULT_PARAMETERS

    net = _load_net(args)
    tree = bkrus(net, args.eps)
    buffer = BufferType(
        input_capacitance=args.buffer_cap,
        intrinsic_delay=args.buffer_delay,
        output_resistance=args.buffer_resistance,
    )
    solution = van_ginneken(
        tree, DEFAULT_PARAMETERS, buffer, max_buffers=args.max_buffers
    )
    achieved = worst_buffered_delay(
        tree, DEFAULT_PARAMETERS, buffer, solution.buffered_nodes
    )
    print(
        format_table(
            ["quantity", "value"],
            [
                ("benchmark", net.name or "?"),
                ("tree", f"bkrus eps={format_eps(args.eps)}"),
                ("buffers inserted", len(solution.buffered_nodes)),
                ("buffered nodes", ",".join(map(str, sorted(solution.buffered_nodes))) or "-"),
                ("worst delay (unbuffered)", f"{-solution.unbuffered_slack:.3f}"),
                ("worst delay (buffered)", f"{achieved:.3f}"),
            ],
        )
    )
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.analysis.batch import JobSpec, execute_job
    from repro.observability import describe, render_span_tree, span_from_dict
    from repro.observability.export import job_trace_entry, write_jsonl

    net = _load_net(args)
    spec = JobSpec(algorithm=args.algorithm, net=net, eps=args.eps)
    record = execute_job((0, spec), trace=True)
    summary = record.trace_summary or {}
    if record.ok and record.report is not None:
        print(
            f"{record.algorithm} on {record.net_name} "
            f"eps={format_eps(record.eps)}: cost={record.report.cost:.4f} "
            f"longest path={record.report.longest_path:.4f} "
            f"({record.wall_seconds:.4f}s)"
        )
    else:
        print(
            f"{record.algorithm} on {record.net_name} "
            f"eps={format_eps(record.eps)} FAILED: {record.error}",
            file=sys.stderr,
        )
    root = summary.get("root")
    if root is not None:
        print()
        print(render_span_tree(span_from_dict(root)))
    counters = summary.get("counters", {})
    if counters:
        print()
        rows = []
        for name in sorted(counters):
            spec_info = describe(name)
            rows.append(
                (
                    name,
                    f"{counters[name]:g}",
                    spec_info.unit if spec_info else "?",
                    spec_info.description if spec_info else "(undeclared)",
                )
            )
        print(format_table(["counter", "value", "unit", "meaning"], rows))
    if args.jsonl:
        path = write_jsonl(args.jsonl, [job_trace_entry(record)])
        print(f"\nwrote {path}")
    return 0 if record.ok else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.analysis import bench as bench_module

    argv: List[str] = [
        "--suite",
        args.suite,
        "--repeats",
        str(args.repeats),
        "--tolerance",
        str(args.tolerance),
    ]
    if args.out:
        argv += ["--out", args.out]
    if args.compare:
        argv += ["--compare", args.compare]
    if args.fail_on_regress:
        argv.append("--fail-on-regress")
    if args.list_cases:
        argv.append("--list-cases")
    return bench_module.main(argv)


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.devtools import lint as lint_module

    if args.list_rules:
        return lint_module.main(["--list-rules"])
    argv: List[str] = []
    if args.rules:
        argv += ["--rules", args.rules]
    if args.format != "text":
        argv += ["--format", args.format]
    if args.output:
        argv += ["--output", args.output]
    if args.jobs != 1:
        argv += ["--jobs", str(args.jobs)]
    if args.baseline:
        argv += ["--baseline", args.baseline]
    if args.no_baseline:
        argv.append("--no-baseline")
    if args.update_baseline:
        argv.append("--update-baseline")
    return lint_module.main(argv + list(args.paths))


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve.daemon import ServeConfig, serve_forever

    config = ServeConfig.from_env(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store=args.store,
        max_queue=args.max_queue,
        log_path=args.log,
        trace=False if args.no_trace else None,
    )
    return serve_forever(config)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import write_report

    path = write_report(args.results_dir, args.out)
    print(f"wrote {path}")
    return 0


def _cmd_zeroskew(args: argparse.Namespace) -> int:
    from repro.algorithms.lub import lub_bkrus
    from repro.algorithms.mst import mst_cost
    from repro.clock import zero_skew_tree
    from repro.core.exceptions import InfeasibleError

    net = _load_net(args)
    reference = mst_cost(net)
    tree = zero_skew_tree(net)
    rows = [
        ("benchmark", net.name or "?"),
        ("path-branching skew", f"{tree.skew():.6f}"),
        ("path-branching cost/MST", f"{tree.cost / reference:.3f}"),
        ("steiner points", tree.num_steiner_points()),
        ("snaked (detour) wire", f"{tree.detour_length():.2f}"),
    ]
    try:
        node_tree = lub_bkrus(net, args.eps1, args.eps2)
        rows.append(
            ("node-branching skew (s)", f"{node_tree.skew_ratio():.3f}")
        )
        rows.append(
            ("node-branching cost/MST", f"{node_tree.cost / reference:.3f}")
        )
    except InfeasibleError:
        rows.append(
            (f"node-branching ({args.eps1}, {args.eps2})", "infeasible")
        )
    print(format_table(["quantity", "value"], rows))
    return 0


def _cmd_table(args: argparse.Namespace) -> int:
    import math as _math

    from repro.analysis import paper_tables as pt

    number = args.number
    if number == 1:
        rows = pt.table1_rows(scale=args.scale if args.scale else 0.05)
        headers = list(pt.TABLE1_HEADERS)
    elif number == 2:
        eps_sweep = (
            tuple(args.eps_list)
            if args.eps_list
            else (_math.inf, 0.5, 0.2, 0.0)
        )
        raw = pt.table2_rows(eps_sweep=eps_sweep)
        headers = list(pt.TABLE2_HEADERS)
        rows = []
        for name, eps, *cells in raw:
            row = [name, eps]
            for cell in cells:
                row.extend(["-", "-"] if cell is None else list(cell))
            rows.append(row)
    elif number == 3:
        rows = pt.table3_rows(bench_sinks=args.sinks)
        headers = list(pt.TABLE3_HEADERS)
    elif number == 4:
        rows = pt.table4_rows(cases=args.cases, sizes=(5, 8, 10))
        headers = list(pt.TABLE4_HEADERS)
    elif number == 5:
        rows = pt.table5_rows(bench_sinks=args.sinks)
        headers = list(pt.TABLE5_HEADERS)
    else:
        print(f"error: unknown table {number}", file=sys.stderr)
        return 1
    print(
        format_table(headers, rows, title=f"Table {number} (scaled defaults)")
    )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-cli",
        description="Bounded path length spanning/Steiner tree toolkit",
    )
    parser.add_argument(
        "--backend",
        choices=list(BACKENDS),
        default=None,
        help=(
            "kernel backend for backend-aware algorithms (sets "
            f"{BACKEND_ENV_VAR}; inherited by batch worker processes)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    route = sub.add_parser("route", help="run one algorithm on a benchmark")
    route.add_argument("--benchmark", required=True)
    route.add_argument(
        "--algorithm", default="bkrus", choices=algorithm_names()
    )
    route.add_argument("--eps", type=_parse_eps, default=0.2)
    route.add_argument("--scale", type=float, default=None)
    route.add_argument(
        "--obstacle",
        type=_parse_obstacle,
        action="append",
        metavar="XMIN,YMIN,XMAX,YMAX",
        help=(
            "rectangular blockage (repeatable); needs "
            "--algorithm bkst_obstacles"
        ),
    )
    route.add_argument(
        "--cost-region",
        type=_parse_cost_region,
        action="append",
        metavar="XMIN,YMIN,XMAX,YMAX,MULT",
        help=(
            "weighted region with cost multiplier >= 1 (repeatable; inf "
            "blocks); needs --algorithm bkst_obstacles"
        ),
    )
    route.add_argument(
        "--segments-json",
        metavar="PATH",
        default=None,
        help=(
            "export the tree as collinear-merged wire segments to PATH "
            "('-' for stdout; Steiner algorithms only)"
        ),
    )
    route.set_defaults(func=_cmd_route)

    solve = sub.add_parser(
        "solve", help="budgeted solve with an optional fallback chain"
    )
    solve.add_argument("--benchmark", required=True)
    solve.add_argument(
        "--algorithm", default="bmst_g", choices=algorithm_names()
    )
    solve.add_argument("--eps", type=_parse_eps, default=0.2)
    solve.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="wall-clock budget in seconds (monotonic)",
    )
    solve.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        help="cooperative checkpoint budget (search-node cap)",
    )
    solve.add_argument(
        "--fallback",
        action="store_true",
        help="on budget exhaustion, fall back down the default chain",
    )
    solve.add_argument("--scale", type=float, default=None)
    solve.set_defaults(func=_cmd_solve)

    batch = sub.add_parser(
        "batch", help="job grid through the parallel batch engine"
    )
    batch.add_argument(
        "--benchmarks", required=True, help="comma-separated benchmark names"
    )
    batch.add_argument(
        "--algorithms",
        default="bprim,brbc,bkrus,bkh2",
        help="comma-separated algorithm names",
    )
    batch.add_argument(
        "--eps-list",
        type=_parse_eps,
        nargs="*",
        default=None,
        help="eps values of the grid (default: 0.2)",
    )
    batch.add_argument("--n-jobs", type=int, default=1)
    batch.add_argument("--scale", type=float, default=None)
    batch.add_argument(
        "--deadline",
        type=float,
        default=None,
        help="per-job wall-clock budget in seconds",
    )
    batch.add_argument(
        "--max-nodes",
        type=int,
        default=None,
        help="per-job cooperative checkpoint budget",
    )
    batch.add_argument(
        "--fallback",
        action="store_true",
        help="give budgeted jobs a default fallback chain",
    )
    batch.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="retries per job after worker crashes (default: 3)",
    )
    batch.add_argument(
        "--job-timeout",
        type=float,
        default=None,
        help="stall backstop: rebuild the pool if no job finishes "
        "within this many seconds",
    )
    batch.add_argument(
        "--retry-backoff",
        type=float,
        default=0.1,
        help="base sleep before a pool rebuild (doubles per rebuild)",
    )
    batch.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persistent result store directory: already-computed jobs "
        "replay from it instead of re-solving (REPRO_RESULT_STORE works "
        "too)",
    )
    batch.set_defaults(func=_cmd_batch)

    sweep = sub.add_parser(
        "sweep",
        help="eps sweep (Figure 9 data), or a crash-safe distributed "
        "sweep with --store/--workers",
    )
    sweep.add_argument("--benchmark", default=None)
    sweep.add_argument(
        "--algorithm", default="bkrus", choices=algorithm_names()
    )
    sweep.add_argument("--scale", type=float, default=None)
    sweep.add_argument(
        "--store",
        default=None,
        help="result-store directory; arms the distributed lease-driven mode",
    )
    sweep.add_argument(
        "--queue",
        default=None,
        help="work-queue directory (default: <store>/queue)",
    )
    sweep.add_argument("--workers", type=int, default=2)
    sweep.add_argument("--chunk-size", type=int, default=25)
    sweep.add_argument(
        "--ttl",
        type=float,
        default=30.0,
        help="lease TTL in seconds; a worker silent this long is presumed dead",
    )
    sweep.add_argument(
        "--max-seconds",
        type=float,
        default=None,
        help="parent-side backstop: terminate workers and report incomplete",
    )
    sweep.add_argument("--sizes", default="5,8", help="sink counts, comma-separated")
    sweep.add_argument("--cases", type=int, default=5, help="seeded cases per size")
    sweep.add_argument("--algorithms", default="bkrus", help="comma-separated")
    sweep.add_argument("--eps-values", default="0.2", help="comma-separated")
    sweep.set_defaults(func=_cmd_sweep)

    table1 = sub.add_parser("table1", help="benchmark characteristics")
    table1.add_argument("--scale", type=float, default=1.0)
    table1.set_defaults(func=_cmd_table1)

    compare = sub.add_parser("compare", help="algorithms side by side")
    compare.add_argument("--benchmark", required=True)
    compare.add_argument("--eps", type=_parse_eps, default=0.2)
    compare.add_argument(
        "--algorithms", default="bprim,brbc,bkrus,bkh2"
    )
    compare.add_argument("--scale", type=float, default=None)
    compare.set_defaults(func=_cmd_compare)

    lub = sub.add_parser("lub", help="lower/upper bound sweep (Table 5)")
    lub.add_argument("--benchmark", required=True)
    lub.add_argument("--scale", type=float, default=None)
    lub.set_defaults(func=_cmd_lub)

    steiner = sub.add_parser("steiner", help="BKST with an ASCII plot")
    steiner.add_argument("--benchmark", required=True)
    steiner.add_argument("--eps", type=_parse_eps, default=0.2)
    steiner.add_argument("--scale", type=float, default=None)
    steiner.set_defaults(func=_cmd_steiner)

    render = sub.add_parser("render", help="write an SVG of a tree")
    render.add_argument("--benchmark", required=True)
    render.add_argument(
        "--algorithm", default="bkrus", choices=algorithm_names()
    )
    render.add_argument("--eps", type=_parse_eps, default=0.2)
    render.add_argument("--out", required=True)
    render.add_argument("--scale", type=float, default=None)
    render.set_defaults(func=_cmd_render)

    buffer = sub.add_parser("buffer", help="van Ginneken buffer insertion")
    buffer.add_argument("--benchmark", required=True)
    buffer.add_argument("--eps", type=_parse_eps, default=0.2)
    buffer.add_argument("--buffer-cap", type=float, default=0.02)
    buffer.add_argument("--buffer-delay", type=float, default=0.5)
    buffer.add_argument("--buffer-resistance", type=float, default=50.0)
    buffer.add_argument("--max-buffers", type=int, default=None)
    buffer.add_argument("--scale", type=float, default=None)
    buffer.set_defaults(func=_cmd_buffer)

    table = sub.add_parser(
        "table", help="regenerate a paper table (scaled defaults)"
    )
    table.add_argument("--number", type=int, required=True, choices=range(1, 6))
    table.add_argument("--cases", type=int, default=5)
    table.add_argument("--sinks", type=int, default=24)
    table.add_argument("--scale", type=float, default=None)
    table.add_argument(
        "--eps-list", type=_parse_eps, nargs="*", default=None
    )
    table.set_defaults(func=_cmd_table)

    zeroskew = sub.add_parser(
        "zeroskew", help="exact zero-skew clock tree comparison"
    )
    zeroskew.add_argument("--benchmark", required=True)
    zeroskew.add_argument("--eps1", type=float, default=0.95)
    zeroskew.add_argument("--eps2", type=float, default=0.0)
    zeroskew.add_argument("--scale", type=float, default=None)
    zeroskew.set_defaults(func=_cmd_zeroskew)

    trace = sub.add_parser(
        "trace", help="run one traced job and print its span tree"
    )
    trace.add_argument("algorithm", choices=algorithm_names())
    trace.add_argument("--benchmark", default="p1")
    trace.add_argument("--eps", type=_parse_eps, default=0.2)
    trace.add_argument("--scale", type=float, default=None)
    trace.add_argument(
        "--jsonl", default=None, help="also write the trace as one JSONL line"
    )
    trace.set_defaults(func=_cmd_trace)

    bench = sub.add_parser(
        "bench",
        help="seeded perf suite writing a BENCH_<suite>.json record",
    )
    from repro.analysis.bench import suite_names

    bench.add_argument("--suite", default="quick", choices=suite_names())
    bench.add_argument("--repeats", type=int, default=3)
    bench.add_argument(
        "--out",
        default=None,
        help="record path (default: BENCH_<suite>.json)",
    )
    bench.add_argument(
        "--compare",
        default=None,
        metavar="BASELINE.json",
        help="diff the fresh record against a baseline record",
    )
    bench.add_argument("--tolerance", type=float, default=0.25)
    bench.add_argument("--fail-on-regress", action="store_true")
    bench.add_argument(
        "--list-cases",
        action="store_true",
        help="list the suite's cases without running them",
    )
    bench.set_defaults(func=_cmd_bench)

    lint = sub.add_parser(
        "lint", help="project-specific static analysis (repro-lint)"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests", "benchmarks"],
        help="files or directories to lint (default: src tests benchmarks)",
    )
    lint.add_argument(
        "--select",
        "--rules",
        dest="rules",
        default=None,
        help="comma-separated rule ids to run, e.g. R101,R103",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue (both phases) and exit",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--output", default=None, help="write rendered output to this file"
    )
    lint.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="process-pool width for the per-file phase (default: serial)",
    )
    lint.add_argument("--baseline", default=None, help="baseline file path")
    lint.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline and report every violation",
    )
    lint.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from current findings",
    )
    lint.set_defaults(func=_cmd_lint)

    report = sub.add_parser(
        "report", help="stitch persisted benchmark outputs into markdown"
    )
    report.add_argument("--results-dir", default="benchmarks/results")
    report.add_argument("--out", default="RESULTS.md")
    report.set_defaults(func=_cmd_report)

    serve = sub.add_parser(
        "serve", help="long-running routing-as-a-service daemon"
    )
    serve.add_argument("--host", default=None)
    serve.add_argument(
        "--port", type=int, default=None, help="TCP port, 0 for ephemeral"
    )
    serve.add_argument(
        "--workers", type=int, default=None, help="solver pool size"
    )
    serve.add_argument(
        "--store", default=None, help="result-store directory (memo tier)"
    )
    serve.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="in-flight request cap before 503",
    )
    serve.add_argument(
        "--log", default=None, help="per-request JSONL log path"
    )
    serve.add_argument(
        "--no-trace",
        action="store_true",
        help="skip per-request trace sessions in workers",
    )
    serve.set_defaults(func=_cmd_serve)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "backend", None):
        # Environment, not a parameter: the knob must survive the fork
        # into batch workers and reach call-time backend dispatch.
        os.environ[BACKEND_ENV_VAR] = args.backend
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
