"""T-exchange machinery (Sections 4 and 5, Figure 8).

A *T-exchange* on a spanning tree ``T`` is a pair ``(e, f)`` with
``e in T``, ``f not in T`` such that ``T - e + f`` is again a spanning
tree; its weight is ``weight(f) - weight(e)``.  Exchanges are the moves
of both exact algorithms: Gabow's enumeration steps between trees via
minimal exchanges, and BKEX searches sequences whose weight sum is
negative.

For a non-tree edge ``(x, y)`` the removable edges are exactly the tree
edges on the unique ``x``-``y`` tree path.  The paper finds them by
walking ``u`` and ``v`` from ``x`` and ``y`` toward their common ancestor
using the father array ``FA`` — :func:`iter_cycle_exchanges` reproduces
that walk, yielding candidates in the same order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.edges import Edge, normalize, non_tree_edges
from repro.core.net import Net
from repro.core.tree import RoutingTree


@dataclass(frozen=True)
class Exchange:
    """One T-exchange: remove a tree edge, add a non-tree edge."""

    remove: Edge
    add: Edge
    weight: float
    """``weight(add) - weight(remove)``; negative means the swap saves cost."""

    def apply(self, tree: RoutingTree) -> RoutingTree:
        # Candidates from the cycle walk are valid by construction.
        return tree.with_exchange(self.remove, self.add, validate=False)


def iter_cycle_exchanges(
    tree: RoutingTree,
    non_tree_edge: Edge,
    parents: Optional[List[int]] = None,
    depths: Optional[List[int]] = None,
) -> Iterator[Exchange]:
    """Exchanges removing each tree edge on the cycle of ``non_tree_edge``.

    Follows the paper's DFS_EXCHANGE walk: ``u`` and ``v`` start at the
    edge's endpoints and the deeper of the two retreats to its father,
    pairing the retreat edge with ``non_tree_edge`` at each step, until
    both meet at the common ancestor.
    """
    if parents is None:
        parents = tree.parents()
    if depths is None:
        depths = tree.depths()
    x, y = non_tree_edge
    dist = tree.net.dist
    add_weight = float(dist[x, y])
    u, v = x, y
    while u != v:
        if depths[u] > depths[v]:
            u, v = v, u
        father = parents[v]
        remove = normalize((v, father))
        yield Exchange(
            remove=remove,
            add=normalize((x, y)),
            weight=add_weight - float(dist[v, father]),
        )
        v = father


def iter_all_exchanges(tree: RoutingTree) -> Iterator[Exchange]:
    """Every T-exchange of ``tree`` (all non-tree edges, all cycle edges).

    ``O(E * V)`` candidates in the worst case, matching the paper's count
    of children per node of the BKEX search tree.
    """
    parents = tree.parents()
    depths = tree.depths()
    for edge in non_tree_edges(tree.num_terminals, tree.edges):
        yield from iter_cycle_exchanges(tree, edge, parents, depths)


def negative_exchanges(tree: RoutingTree) -> List[Exchange]:
    """All strictly cost-reducing exchanges, most negative first."""
    found = [ex for ex in iter_all_exchanges(tree) if ex.weight < 0]
    found.sort(key=lambda ex: (ex.weight, ex.remove, ex.add))
    return found


def minimal_exchange(tree: RoutingTree) -> Optional[Exchange]:
    """The minimum-weight T-exchange, or None on a single-node tree.

    On an MST the minimal exchange is non-negative (that is the classical
    optimality criterion, and the basis of Gabow's next-tree step).
    """
    best: Optional[Exchange] = None
    for ex in iter_all_exchanges(tree):
        if best is None or (ex.weight, ex.remove, ex.add) < (
            best.weight,
            best.remove,
            best.add,
        ):
            best = ex
    return best


def is_mst_by_exchange(tree: RoutingTree, tolerance: float = 1e-9) -> bool:
    """True iff no T-exchange has negative weight (MST optimality test)."""
    minimal = minimal_exchange(tree)
    return minimal is None or minimal.weight >= -tolerance


def exchange_distance_upper_bound(net: Net) -> int:
    """Max exchanges needed between any two spanning trees: ``V - 1``.

    (Section 5: "one can reach any spanning tree ... from the root by a
    series of at most V - 1 T-exchanges.")
    """
    return net.num_terminals - 1
