"""Spanning-tree construction and optimisation algorithms."""

from repro.algorithms.bkex import bkex, BkexStats, exchange_descent
from repro.algorithms.bkh2 import bkh2, Bkh2Stats, depth2_descent
from repro.algorithms.bkrus import bkrus, bounded_kruskal, KruskalTrace
from repro.algorithms.bprim import bprim, bprim_vectorized
from repro.algorithms.branch_bound import BranchBoundStats, bmst_branch_bound
from repro.algorithms.brbc import brbc
from repro.algorithms.gabow import (
    bmst_brute_force,
    bmst_gabow,
    lemma_preprocessing,
    spanning_trees_in_cost_order,
)
from repro.algorithms.last import last_cost_bound, last_tree
from repro.algorithms.lub import lub_bkex, lub_bkh2, lub_bkrus, lub_exact
from repro.algorithms.mst import kruskal_mst, maximal_spanning_tree, mst, prim_mst
from repro.algorithms.per_sink import bkrus_per_sink, satisfies_per_sink, stretch
from repro.algorithms.prim_dijkstra import prim_dijkstra
from repro.algorithms.spt import spt

__all__ = [
    "bkex",
    "BkexStats",
    "exchange_descent",
    "bkh2",
    "Bkh2Stats",
    "depth2_descent",
    "bkrus",
    "bounded_kruskal",
    "KruskalTrace",
    "bprim",
    "bprim_vectorized",
    "BranchBoundStats",
    "bmst_branch_bound",
    "brbc",
    "bmst_brute_force",
    "bmst_gabow",
    "lemma_preprocessing",
    "spanning_trees_in_cost_order",
    "last_cost_bound",
    "last_tree",
    "lub_bkex",
    "lub_bkh2",
    "lub_bkrus",
    "lub_exact",
    "bkrus_per_sink",
    "satisfies_per_sink",
    "stretch",
    "kruskal_mst",
    "maximal_spanning_tree",
    "mst",
    "prim_mst",
    "prim_dijkstra",
    "spt",
]
