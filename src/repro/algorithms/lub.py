"""Lower AND upper bounded path length trees (Section 6).

Clock routing wants simultaneous control of skew and cost: every
source-to-sink path must satisfy

    ``eps1 * R  <=  path(S, sink)  <=  (1 + eps2) * R``.

The lower bound suppresses "double clocking" (a too-fast combinational
path racing the clock edge) by *wire-length* control instead of area- and
power-hungry delay buffers.

The construction is BKRUS with two additions:

* **Lemma 6.1** — direct source edges shorter than ``eps1 * R`` are
  eliminated from the edge stream (connecting a sink directly through
  them would fix a too-short path).
* **Merge-time lower check** — by the Kruskal invariants a node's source
  path is frozen the moment its component joins the source component, so
  a merge onto the source component is rejected unless every newly fixed
  path is at least ``eps1 * R`` (the shortest is the path to the merge
  endpoint itself).  For merges between two source-free components the
  feasible-node test (3-b) additionally requires the witnessing direct
  edge to survive Lemma 6.1 (``dist(S, x) >= eps1 * R``).

Unlike the upper-bound-only problem, (eps1, eps2) combinations can be
genuinely infeasible for spanning trees (the paper's Table 5 dashes);
:class:`~repro.core.exceptions.InfeasibleError` reports those.  Exact
variants (ordered enumeration, exchange descent) are provided as well,
mirroring the paper's "BKRUS, BMST_G, BKEX, and BKH2 ... implemented for
both the lower and the upper bounded path length".
"""

from __future__ import annotations

import math
from typing import Optional, Tuple

from repro.core.edges import sorted_edge_arrays
from repro.core.exceptions import (
    AlgorithmLimitError,
    InfeasibleError,
    InvalidParameterError,
)
from repro.core.net import Net, SOURCE
from repro.core.partial_forest import PartialForest
from repro.core.tree import RoutingTree
from repro.algorithms.bkrus import FeasibilityTest, bounded_kruskal
from repro.algorithms.bkex import BkexStats, exchange_descent
from repro.algorithms.bkh2 import Bkh2Stats, depth2_descent
from repro.algorithms.gabow import spanning_trees_in_cost_order


def resolve_bounds(net: Net, eps1: float, eps2: float) -> Tuple[float, float]:
    """``(lower, upper)`` absolute path bounds for ``(eps1, eps2)``.

    ``eps1 >= 0`` scales the lower bound (``1.0`` means every path at
    least as long as the farthest direct run — exact zero skew when
    combined with ``eps2 = 0``); ``eps2 >= 0`` is the usual upper slack.
    """
    if eps1 < 0 or math.isnan(eps1):
        raise InvalidParameterError(f"eps1 must be >= 0, got {eps1}")
    if eps2 < 0 or math.isnan(eps2):
        raise InvalidParameterError(f"eps2 must be >= 0, got {eps2}")
    radius = net.radius()
    lower = eps1 * radius
    upper = (1.0 + eps2) * radius if math.isfinite(eps2) else math.inf
    if lower > upper:
        raise InfeasibleError(
            f"lower bound {lower:.6g} exceeds upper bound {upper:.6g}"
        )
    return lower, upper


def lub_feasibility_test(
    net: Net,
    lower: float,
    upper: float,
    tolerance: float = 1e-9,
) -> FeasibilityTest:
    """Merge-feasibility policy for the two-sided bound."""
    dist = net.dist

    def feasible(forest: PartialForest, u: int, v: int) -> bool:
        d = float(dist[u, v])
        source_in_u = forest.component_contains_source(u)
        source_in_v = forest.component_contains_source(v)
        if source_in_u or source_in_v:
            if source_in_v:
                u, v = v, u  # normalise: source side is t_u
            head = forest.path(SOURCE, u) + d
            if head + forest.radius(v) > upper + tolerance:
                return False
            # Newly fixed source paths are head + path(v, x); the
            # shortest is head itself (x = v).
            return head >= lower - tolerance
        nodes, radii = forest.merged_radii(u, v)
        direct = dist[SOURCE, nodes]
        witness = (direct >= lower - tolerance) & (
            direct + radii <= upper + tolerance
        )
        return bool(witness.any())

    return feasible


def _lemma61_edge_stream(net: Net, lower: float, tolerance: float):
    """Sorted complete-graph edges minus Lemma 6.1 eliminations."""
    dist = net.dist
    _, us, vs = sorted_edge_arrays(net)
    for u, v in zip(us.tolist(), vs.tolist()):
        if u == SOURCE and float(dist[SOURCE, v]) < lower - tolerance:
            continue
        yield (u, v)


def _check_two_sided(
    tree: RoutingTree,
    lower: float,
    upper: float,
    tolerance: float,
) -> bool:
    paths = tree.source_path_lengths()[1:]
    return bool(
        paths.min() >= lower - tolerance and paths.max() <= upper + tolerance
    )


def lub_bkrus(
    net: Net,
    eps1: float,
    eps2: float,
    tolerance: float = 1e-9,
) -> RoutingTree:
    """BKRUS under a two-sided path-length bound (the paper's LUBKT).

    Raises :class:`InfeasibleError` when the construction cannot span the
    net within the bounds; the paper notes many (eps1, eps2) pairs are
    infeasible for *node-branching* (spanning) trees and that this is
    unavoidable without Steiner/path branching.
    """
    lower, upper = resolve_bounds(net, eps1, eps2)
    test = lub_feasibility_test(net, lower, upper, tolerance)
    forest = bounded_kruskal(
        net, test, edge_stream=_lemma61_edge_stream(net, lower, tolerance)
    )
    if forest.num_components != 1:
        raise InfeasibleError(
            f"no LUB spanning tree found for eps1={eps1}, eps2={eps2}"
        )
    tree = RoutingTree(net, forest.edges)
    if not _check_two_sided(tree, lower, upper, tolerance):
        raise InfeasibleError(
            f"constructed tree violates bounds for eps1={eps1}, eps2={eps2}"
        )
    return tree


def lub_exact(
    net: Net,
    eps1: float,
    eps2: float,
    max_trees: Optional[int] = 200_000,
    tolerance: float = 1e-9,
) -> RoutingTree:
    """Optimal two-sided-bound spanning tree by ordered enumeration.

    Applies Lemma 6.1 (too-short source edges) plus the Lemma 4.2
    analogue for the upper bound as pre-filters.  Lemma 4.1 is *not*
    sound under a lower bound (its rewiring shortens paths), so it is
    omitted here.
    """
    lower, upper = resolve_bounds(net, eps1, eps2)
    dist = net.dist
    n = net.num_terminals
    exclude = set()
    for v in range(1, n):
        if float(dist[SOURCE, v]) < lower - tolerance:
            exclude.add((SOURCE, v))
    if math.isfinite(upper):
        for a in range(1, n):
            for b in range(a + 1, n):
                w = float(dist[a, b])
                if (
                    float(dist[SOURCE, a]) + w > upper + tolerance
                    and float(dist[SOURCE, b]) + w > upper + tolerance
                ):
                    exclude.add((a, b))
    count = 0
    for tree in spanning_trees_in_cost_order(net, frozenset(), frozenset(exclude)):
        count += 1
        if max_trees is not None and count > max_trees:
            raise AlgorithmLimitError(
                f"LUB enumeration exceeded max_trees={max_trees}"
            )
        if _check_two_sided(tree, lower, upper, tolerance):
            return tree
    raise InfeasibleError(
        f"no spanning tree satisfies eps1={eps1}, eps2={eps2}"
    )


def lub_bkex(
    net: Net,
    eps1: float,
    eps2: float,
    initial: Optional[RoutingTree] = None,
    max_depth: Optional[int] = None,
    stats: Optional[BkexStats] = None,
    tolerance: float = 1e-9,
) -> RoutingTree:
    """Negative-sum-exchange descent under the two-sided bound."""
    lower, upper = resolve_bounds(net, eps1, eps2)
    tree = initial if initial is not None else lub_bkrus(net, eps1, eps2)
    if not _check_two_sided(tree, lower, upper, tolerance):
        raise InvalidParameterError("initial tree violates the two-sided bound")
    return exchange_descent(
        tree,
        lambda candidate: _check_two_sided(candidate, lower, upper, tolerance),
        max_depth=max_depth,
        stats=stats,
        tolerance=tolerance,
    )


def lub_bkh2(
    net: Net,
    eps1: float,
    eps2: float,
    initial: Optional[RoutingTree] = None,
    level2_beam: Optional[int] = None,
    stats: Optional[Bkh2Stats] = None,
    tolerance: float = 1e-9,
) -> RoutingTree:
    """Depth-2 exchange polish under the two-sided bound."""
    lower, upper = resolve_bounds(net, eps1, eps2)
    tree = initial if initial is not None else lub_bkrus(net, eps1, eps2)
    if not _check_two_sided(tree, lower, upper, tolerance):
        raise InvalidParameterError("initial tree violates the two-sided bound")
    return depth2_descent(
        tree,
        lambda candidate: _check_two_sided(candidate, lower, upper, tolerance),
        level2_beam=level2_beam,
        stats=stats,
        tolerance=tolerance,
    )
