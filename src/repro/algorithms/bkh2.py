"""BKH2 — depth-2 negative-sum-exchange post-processing (Section 5).

BKT (the BKRUS output) is a local optimum with respect to any *single*
T-exchange (a consequence of Lemma 3.1), so the cheapest improvement
available is a pair of exchanges with negative weight sum.  BKH2 searches
breadth-first over sequences of one or two exchanges, applies an
improving feasible result, and repeats until no improvement exists —
yielding a deeper (more stable) local optimum than BKT at complexity
``O(E^2 V^3)``.

Because the quadratic level is expensive, the second level optionally
restricts its first exchange to the ``level2_beam`` candidates with the
smallest weights (most promising first).  ``level2_beam=None`` is the
faithful full search used in the tests; benchmarks on larger nets pass a
beam, which is documented in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Optional

from repro.core.exceptions import BudgetExhaustedError, InvalidParameterError
from repro.core.net import Net
from repro.core.tree import RoutingTree
from repro.algorithms.bkrus import bkrus
from repro.algorithms.exchange import Exchange, iter_all_exchanges
from repro.observability import span, tracing_active
from repro.observability.trace import Span
from repro.runtime.budget import Budget, active_budget, use_budget


@dataclass
class Bkh2Stats:
    """Counters for one :func:`bkh2` run."""

    single_improvements: int = 0
    double_improvements: int = 0
    exchanges_scanned: int = 0

    def publish(self, target: Span) -> None:
        """Emit these totals as counters on an open span."""
        target.incr("bkh2.exchanges_scanned", self.exchanges_scanned)
        target.incr("bkh2.single_improvements", self.single_improvements)
        target.incr("bkh2.double_improvements", self.double_improvements)


def _best_single(
    tree: RoutingTree,
    is_feasible: Callable[[RoutingTree], bool],
    tolerance: float,
    stats: Optional[Bkh2Stats],
    budget: Optional[Budget] = None,
) -> Optional[RoutingTree]:
    """Cheapest feasible tree one negative exchange away, or None."""
    best: Optional[RoutingTree] = None
    best_weight = -tolerance
    for ex in iter_all_exchanges(tree):
        if budget is not None:
            budget.checkpoint()
        if stats is not None:
            stats.exchanges_scanned += 1
        if ex.weight >= best_weight:
            continue
        candidate = ex.apply(tree)
        if is_feasible(candidate):
            best = candidate
            best_weight = ex.weight
    return best


def _best_double(
    tree: RoutingTree,
    is_feasible: Callable[[RoutingTree], bool],
    tolerance: float,
    level2_beam: Optional[int],
    stats: Optional[Bkh2Stats],
    budget: Optional[Budget] = None,
) -> Optional[RoutingTree]:
    """Cheapest feasible tree two exchanges away with negative sum."""
    first_moves: List[Exchange] = sorted(
        iter_all_exchanges(tree), key=lambda ex: (ex.weight, ex.remove, ex.add)
    )
    if level2_beam is not None:
        first_moves = first_moves[:level2_beam]
    best: Optional[RoutingTree] = None
    best_sum = -tolerance
    for first in first_moves:
        intermediate = first.apply(tree)
        for second in iter_all_exchanges(intermediate):
            if budget is not None:
                budget.checkpoint()
            if stats is not None:
                stats.exchanges_scanned += 1
            total = first.weight + second.weight
            if total >= best_sum:
                continue
            candidate = second.apply(intermediate)
            if is_feasible(candidate):
                best = candidate
                best_sum = total
    return best


def bkh2(
    net: Net,
    eps: float,
    initial: Optional[RoutingTree] = None,
    level2_beam: Optional[int] = None,
    stats: Optional[Bkh2Stats] = None,
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> RoutingTree:
    """BKRUS followed by repeated best 1- or 2-exchange improvements.

    Parameters
    ----------
    net:
        The net to route.
    eps:
        Non-negative slack; the bound is ``(1 + eps) * R``.
    initial:
        Feasible starting tree; defaults to ``bkrus(net, eps)``.
    level2_beam:
        Optional cap on first-exchange candidates in the double-exchange
        level (sorted by weight); ``None`` searches exhaustively.
    budget:
        Optional :class:`~repro.runtime.Budget`; defaults to the ambient
        one (:func:`~repro.runtime.active_budget`).  BKH2 always holds a
        feasible tree, so on exhaustion it returns the current incumbent
        (anytime semantics); callers can inspect ``budget.exhausted``.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    if budget is None:
        budget = active_budget()
    # Install the resolved budget ambiently so shared helpers (edge
    # streams, seeding constructions) checkpoint the same budget the
    # caller passed explicitly — explicit beats ambient everywhere.
    with use_budget(budget):
        bound = net.path_bound(eps) if math.isfinite(eps) else math.inf
        tree = initial if initial is not None else bkrus(net, eps)
        if tree.longest_source_path() > bound + tolerance:
            raise InvalidParameterError(
                "initial tree violates the path-length bound"
            )

        def is_feasible(candidate: RoutingTree) -> bool:
            return candidate.longest_source_path() <= bound + tolerance

        # Under an active trace session, fill a (caller's or throwaway)
        # stats object and publish its totals on the ``bkh2`` span.
        local_stats = stats
        if local_stats is None and tracing_active():
            local_stats = Bkh2Stats()
        with span("bkh2") as bkh2_span:
            result = depth2_descent(
                tree,
                is_feasible,
                level2_beam=level2_beam,
                stats=local_stats,
                tolerance=tolerance,
                budget=budget,
            )
            if bkh2_span is not None and local_stats is not None:
                local_stats.publish(bkh2_span)
        return result


def depth2_descent(
    tree: RoutingTree,
    is_feasible: Callable[[RoutingTree], bool],
    level2_beam: Optional[int] = None,
    stats: Optional[Bkh2Stats] = None,
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> RoutingTree:
    """Iterate best 1-/2-exchange improvements under a custom feasibility.

    The generalised engine behind :func:`bkh2`; the lower+upper bounded
    solver of Section 6 plugs in a two-sided predicate.  ``tree`` must
    already satisfy ``is_feasible``.

    ``tree`` is a feasible incumbent throughout, so budget exhaustion is
    absorbed here: the latest incumbent is returned as the anytime
    answer (``budget.exhausted`` stays set for the caller to inspect).
    """
    while True:
        try:
            single = _best_single(tree, is_feasible, tolerance, stats, budget)
            if single is not None:
                if stats is not None:
                    stats.single_improvements += 1
                tree = single
                continue
            double = _best_double(
                tree, is_feasible, tolerance, level2_beam, stats, budget
            )
        except BudgetExhaustedError:
            return tree
        if double is not None:
            if stats is not None:
                stats.double_improvements += 1
            tree = double
            continue
        return tree
