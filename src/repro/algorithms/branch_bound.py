"""Branch-and-bound exact BMST (third independent exact method).

Section 4's complaint about Gabow's method is *space*: enumerating
spanning trees in cost order keeps a frontier that can grow with the
number of trees.  BKEX answers with polynomial space; this module adds
the other classical answer, a depth-first branch and bound over edge
decisions:

* branch on the edges in nondecreasing weight order — include or
  exclude each edge that would join two components;
* **lower bound**: the constrained MST respecting the decisions so far
  (admissible: every completion is a spanning tree containing the
  included edges and avoiding the excluded ones);
* **feasibility pruning**: an included edge set must itself pass the
  BKRUS conditions (3-a)/(3-b) — by Lemma 3.1's argument a partial
  forest that already traps a component can never be completed within
  the bound;
* **incumbent**: seeded with the BKRUS tree, so pruning bites from the
  first node.

Space is O(V + E) (one DFS path), time exponential in the worst case —
this solver exists as an independent cross-check oracle for `bmst_gabow`
and `bkex`, and is competitive on small nets.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.edges import sorted_edges
from repro.core.exceptions import (
    AlgorithmLimitError,
    BudgetExhaustedError,
    InvalidParameterError,
)
from repro.core.net import Net
from repro.core.partial_forest import PartialForest
from repro.core.tree import RoutingTree
from repro.algorithms.bkrus import bkrus, upper_bound_test
from repro.algorithms.mst import constrained_mst
from repro.runtime.budget import Budget, active_budget, use_budget


@dataclass
class BranchBoundStats:
    """Search counters for one :func:`bmst_branch_bound` run."""

    nodes_visited: int = 0
    bound_prunes: int = 0
    feasibility_prunes: int = 0
    incumbents: int = 0


def bmst_branch_bound(
    net: Net,
    eps: float,
    max_nodes: Optional[int] = 2_000_000,
    stats: Optional[BranchBoundStats] = None,
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> RoutingTree:
    """Optimal BMST by depth-first branch and bound.

    Raises :class:`AlgorithmLimitError` when ``max_nodes`` search nodes
    are expanded without proving optimality.

    ``budget`` (defaulting to the ambient
    :func:`~repro.runtime.active_budget`) is checkpointed once per
    search node.  The incumbent is seeded with the always-feasible BKRUS
    tree, so exhaustion returns the best incumbent found so far (anytime
    semantics) rather than raising; ``budget.exhausted`` records it.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    if budget is None:
        budget = active_budget()
    bound = net.path_bound(eps) if math.isfinite(eps) else math.inf
    feasible_merge = upper_bound_test(net, bound, tolerance)

    edges = [(u, v) for _, u, v in sorted_edges(net)]

    incumbent = bkrus(net, eps)
    incumbent_cost = incumbent.cost
    best_edges: Optional[Tuple[Tuple[int, int], ...]] = incumbent.edges

    counter = {"nodes": 0}

    def search(
        index: int,
        forest: PartialForest,
        included: List[Tuple[int, int]],
        excluded: frozenset,
    ) -> None:
        nonlocal incumbent_cost, best_edges
        counter["nodes"] += 1
        if budget is not None:
            budget.checkpoint()
        if stats is not None:
            stats.nodes_visited += 1
        if max_nodes is not None and counter["nodes"] > max_nodes:
            raise AlgorithmLimitError(
                f"branch and bound exceeded max_nodes={max_nodes}"
            )
        if forest.num_components == 1:
            tree = RoutingTree(net, included)
            if tree.longest_source_path() <= bound + tolerance:
                if tree.cost < incumbent_cost - tolerance:
                    incumbent_cost = tree.cost
                    best_edges = tree.edges
                    if stats is not None:
                        stats.incumbents += 1
            return
        if index >= len(edges):
            return
        # Lower bound from the constrained MST (ignores the path bound).
        relaxed = constrained_mst(
            net, frozenset(included), excluded
        )
        if relaxed is None:
            return
        if relaxed.cost >= incumbent_cost - tolerance:
            if stats is not None:
                stats.bound_prunes += 1
            return
        # Shortcut: if the relaxation itself is feasible, it is the best
        # completion of this subproblem — take it and stop descending.
        if relaxed.longest_source_path() <= bound + tolerance:
            incumbent_cost = relaxed.cost
            best_edges = relaxed.edges
            if stats is not None:
                stats.incumbents += 1
            return

        u, v = edges[index]
        if forest.connected(u, v):
            search(index + 1, forest, included, excluded)
            return

        # Branch 1: include (u, v) if the merge is completable.  The
        # Merge update is not cheaply reversible, so the child branch
        # rebuilds its forest from the included edge list (O(k) merges
        # on an O(E)-deep path keeps space polynomial, which is the
        # point of this solver).
        if feasible_merge(forest, u, v):
            child = _clone_forest(net, included + [(u, v)])
            search(index + 1, child, included + [(u, v)], excluded)
        elif stats is not None:
            stats.feasibility_prunes += 1

        # Branch 2: exclude (u, v).
        search(index + 1, forest, included, frozenset(excluded | {(u, v)}))

    def _clone_forest(net_: Net, chosen: List[Tuple[int, int]]) -> PartialForest:
        forest = PartialForest(net_)
        for a, b in chosen:
            forest.merge(a, b)
        return forest

    try:
        # Install the resolved budget ambiently so shared helpers
        # (constrained_mst's edge scans) checkpoint the same budget the
        # caller passed explicitly, not a stale ambient one.
        with use_budget(budget):
            search(0, PartialForest(net), [], frozenset())
    except BudgetExhaustedError:
        # The BKRUS-seeded incumbent is always feasible: return it as
        # the anytime answer instead of surfacing the exhaustion.
        pass
    assert best_edges is not None
    return RoutingTree(net, best_edges)
