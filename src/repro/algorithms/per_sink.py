"""Per-sink bounded path length trees (the bounded-*ratio* variant).

The reproduced paper bounds every path by a single global value
``(1 + eps) * R``.  Cong et al.'s original formulation also considers
the per-sink version: each sink ``x`` must satisfy

    ``path(S, x) <= (1 + eps) * dist(S, x)``

— a *stretch* bound, stricter for near sinks and looser for far ones.
The same Kruskal machinery applies with a bound vector instead of a
scalar:

* (3-a) with ``S`` in ``t_u``: every node ``y`` of ``t_v`` must satisfy
  ``path(S, u) + dist(u, v) + path(v, y) <= bound_y`` — checked
  vectorised over ``t_v``'s members (no single-radius shortcut exists,
  because each member carries its own ceiling).
* (3-b) without ``S``: a witness ``x`` must make the *direct* connection
  legal for every member:
  ``dist(S, x) + path_M(x, y) <= bound_y  for all y`` in the merged
  tree.

Rejection permanence (the Lemma 3.1 argument) carries over: both sides
of each inequality behave exactly as in the global-bound proof, with
``bound_y`` constant per node.  At ``eps = 0`` every sink is pinned to
its direct distance (an SPT-path forest); at ``eps = inf`` the
construction is plain Kruskal.

A per-sink tree with parameter ``eps`` is automatically a global-bound
tree with the same ``eps`` (take ``y`` = the farthest sink), so this
variant is the stricter policy; the `bench_per_sink.py` study prices
the difference.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.core.exceptions import InfeasibleError, InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.core.partial_forest import PartialForest
from repro.core.tree import RoutingTree
from repro.algorithms.bkrus import FeasibilityTest, KruskalTrace, bounded_kruskal


def per_sink_bounds(net: Net, eps: float) -> np.ndarray:
    """The bound vector: ``(1 + eps) * dist(S, x)`` per node (inf at S)."""
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    bounds = (1.0 + eps) * np.asarray(net.dist[SOURCE], dtype=float)
    bounds[SOURCE] = math.inf
    return bounds


def per_sink_test(
    net: Net,
    bounds: np.ndarray,
    tolerance: float = 1e-9,
) -> FeasibilityTest:
    """Merge feasibility for a per-node bound vector."""
    dist = net.dist

    def feasible(forest: PartialForest, u: int, v: int) -> bool:
        d = float(dist[u, v])
        source_in_u = forest.component_contains_source(u)
        source_in_v = forest.component_contains_source(v)
        if source_in_u or source_in_v:
            if source_in_v:
                u, v = v, u
            head = forest.path(SOURCE, u) + d
            members = np.asarray(forest.sets.members_view(v), dtype=int)
            paths = head + forest.P[v, members]
            return bool(np.all(paths <= bounds[members] + tolerance))
        mu = np.asarray(forest.sets.members_view(u), dtype=int)
        mv = np.asarray(forest.sets.members_view(v), dtype=int)
        members = np.concatenate([mu, mv])
        ceilings = bounds[members]
        # path_M(x, y) for x, y in the merged tree: within-side paths
        # plus cross terms through the new edge.
        p_uu = forest.P[np.ix_(mu, mu)]
        p_vv = forest.P[np.ix_(mv, mv)]
        cross = forest.P[mu, u][:, None] + d + forest.P[v, mv][None, :]
        top = np.concatenate([p_uu, cross], axis=1)
        bottom = np.concatenate([cross.T, p_vv], axis=1)
        path_matrix = np.concatenate([top, bottom], axis=0)
        direct = np.asarray(dist[SOURCE])[members]
        # Witness x: direct[x] + path_M(x, y) <= bounds[y] for all y.
        slack = ceilings[None, :] - (direct[:, None] + path_matrix)
        return bool(np.any(slack.min(axis=1) >= -tolerance))

    return feasible


def bkrus_per_sink(
    net: Net,
    eps: float,
    tolerance: float = 1e-9,
    trace: Optional[KruskalTrace] = None,
) -> RoutingTree:
    """Bounded Kruskal under the per-sink stretch bound.

    Always completes for ``eps >= 0``: the direct source edge of any
    witness is legal by the witness test itself, and every singleton is
    its own witness initially, so the feasible-node invariant carries
    over from the global-bound argument.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    if math.isinf(eps):
        from repro.algorithms.mst import mst

        return mst(net)
    bounds = per_sink_bounds(net, eps)
    forest = bounded_kruskal(net, per_sink_test(net, bounds, tolerance), trace=trace)
    if forest.num_components != 1:
        raise InfeasibleError(
            "per-sink BKRUS failed to span the net — this indicates a "
            "broken feasibility policy, not a property of the input"
        )
    tree = RoutingTree(net, forest.edges)
    assert satisfies_per_sink(tree, eps, tolerance)
    return tree


def satisfies_per_sink(
    tree: RoutingTree,
    eps: float,
    tolerance: float = 1e-9,
) -> bool:
    """Does every sink meet its stretch bound ``(1+eps) * dist(S, x)``?"""
    paths = tree.source_path_lengths()
    direct = np.asarray(tree.net.dist[SOURCE])
    sinks = slice(1, None)
    return bool(
        np.all(paths[sinks] <= (1.0 + eps) * direct[sinks] + tolerance)
    )


def stretch(tree: RoutingTree) -> float:
    """The tree's maximum stretch: ``max_x path(S, x) / dist(S, x)``.

    The smallest ``eps`` for which the tree is per-sink feasible is
    ``stretch - 1``.
    """
    paths = tree.source_path_lengths()
    direct = np.asarray(tree.net.dist[SOURCE])
    ratios = paths[1:] / direct[1:]
    return float(ratios.max())
