"""BMST_G — exact bounded path length MST via ordered tree enumeration.

Section 4 adopts Gabow's 1977 procedure: generate spanning trees in
nondecreasing cost order and stop at the first one whose source-to-sink
paths all fit within ``(1 + eps) * R``; that tree is an optimal BMST.

We implement the enumeration with the *partition* scheme (each search
node carries force-in / force-out edge sets and its constrained MST),
which yields trees in exactly nondecreasing cost order — the paper notes
its own implementation also "is somewhat different" from Gabow's
exchange bookkeeping.  The three preprocessing lemmas that make the
method practical are applied first:

* **Lemma 4.1** — eliminate a sink-sink edge ``(a, b)`` whose weight
  exceeds both ``weight(S, a)`` and ``weight(S, b)``: rerouting the
  detached component straight from the source is always cheaper and
  never lengthens a path.
* **Lemma 4.2** — eliminate ``(a, b)`` when both
  ``weight(S, a) + weight(a, b)`` and ``weight(S, b) + weight(a, b)``
  exceed the bound: including it forces one endpoint over the bound.
* **Lemma 4.3** — force edge ``(S, a)`` when every two-hop route
  ``S -> x -> a`` already exceeds the bound: ``a`` must attach directly.

The number of spanning trees of a complete graph is ``V^(V-2)``; callers
can cap the enumeration with ``max_trees`` (an
:class:`~repro.core.exceptions.AlgorithmLimitError` is raised when hit).
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import FrozenSet, Iterator, Optional, Set, Tuple

from repro.core.edges import Edge
from repro.core.exceptions import (
    AlgorithmLimitError,
    InfeasibleError,
    InvalidParameterError,
)
from repro.core.net import Net, SOURCE
from repro.core.tree import RoutingTree
from repro.algorithms.mst import constrained_mst
from repro.observability import incr, span, tracing_active
from repro.runtime.budget import Budget, active_budget, use_budget


def lemma_preprocessing(
    net: Net,
    bound: float,
    tolerance: float = 1e-9,
) -> Tuple[FrozenSet[Edge], FrozenSet[Edge]]:
    """Forced-in and forced-out edge sets from Lemmas 4.1-4.3.

    Returns ``(include, exclude)``.  ``include`` holds source edges that
    every feasible optimal tree must contain; ``exclude`` holds edges no
    optimal feasible tree can contain.
    """
    dist = net.dist
    n = net.num_terminals
    exclude: Set[Edge] = set()
    include: Set[Edge] = set()
    traced = tracing_active()

    for a in range(1, n):
        for b in range(a + 1, n):
            w_ab = float(dist[a, b])
            # Lemma 4.1: strictly dominated by both source edges.
            if w_ab > float(dist[SOURCE, a]) + tolerance and w_ab > float(
                dist[SOURCE, b]
            ) + tolerance:
                exclude.add((a, b))
                if traced:
                    incr("bmst_g.lemma41_pruned")
                continue
            # Lemma 4.2: either orientation would break the bound.
            if (
                float(dist[SOURCE, a]) + w_ab > bound + tolerance
                and float(dist[SOURCE, b]) + w_ab > bound + tolerance
            ):
                exclude.add((a, b))
                if traced:
                    incr("bmst_g.lemma42_pruned")

    for a in range(1, n):
        two_hop_all_violate = all(
            float(dist[SOURCE, x]) + float(dist[x, a]) > bound + tolerance
            for x in range(1, n)
            if x != a
        )
        if two_hop_all_violate and n > 2:
            include.add((SOURCE, a))
        elif n == 2:
            include.add((SOURCE, a))
    if traced:
        incr("bmst_g.lemma43_forced", len(include))

    return frozenset(include), frozenset(exclude)


def spanning_trees_in_cost_order(
    net: Net,
    include: FrozenSet[Edge] = frozenset(),
    exclude: FrozenSet[Edge] = frozenset(),
    max_trees: Optional[int] = None,
    budget: Optional[Budget] = None,
) -> Iterator[RoutingTree]:
    """Yield spanning trees in nondecreasing cost order.

    Best-first search over constraint partitions: each heap entry is the
    constrained MST of its ``(include, exclude)`` pair, and a popped tree
    branches into children that each pin down one more of its free edges.
    Every spanning tree consistent with the root constraints is produced
    exactly once.

    ``budget`` checkpoints once per child-partition MST (the dominant
    cost of each expansion); exhaustion raises
    :class:`~repro.core.exceptions.BudgetExhaustedError` out of the
    generator.
    """
    root = constrained_mst(net, include, exclude)
    if root is None:
        return
    counter = itertools.count()
    heap = [(root.cost, next(counter), root, include, exclude)]
    produced = 0
    while heap:
        cost, _, tree, inc, exc = heapq.heappop(heap)
        yield tree
        produced += 1
        if max_trees is not None and produced >= max_trees:
            raise AlgorithmLimitError(
                f"spanning tree enumeration exceeded max_trees={max_trees}"
            )
        free_edges = [edge for edge in tree.edges if edge not in inc]
        pinned: Set[Edge] = set(inc)
        for edge in free_edges:
            if budget is not None:
                budget.checkpoint()
            child_exclude = frozenset(exc | {edge})
            child_include = frozenset(pinned)
            child = constrained_mst(net, child_include, child_exclude)
            if child is not None:
                heapq.heappush(
                    heap,
                    (child.cost, next(counter), child, child_include, child_exclude),
                )
            pinned.add(edge)


def count_spanning_trees(net: Net, limit: int = 100_000) -> int:
    """Count spanning trees by exhaustive ordered enumeration (tests only).

    For a complete graph this should equal Cayley's ``V^(V-2)``.
    """
    count = 0
    for _ in spanning_trees_in_cost_order(net):
        count += 1
        if count > limit:
            raise AlgorithmLimitError(f"more than {limit} spanning trees")
    return count


def bmst_gabow(
    net: Net,
    eps: float,
    max_trees: Optional[int] = 200_000,
    use_lemmas: bool = True,
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> RoutingTree:
    """Optimal bounded path length MST by ordered enumeration (BMST_G).

    Parameters
    ----------
    net:
        The net to route.
    eps:
        Non-negative slack; the bound is ``(1 + eps) * R``.
    max_trees:
        Enumeration cap; ``None`` removes it (exponential worst case).
    use_lemmas:
        Apply the Lemma 4.1-4.3 filters (always sound; big speedups).
    budget:
        Optional :class:`~repro.runtime.Budget`; defaults to the ambient
        one (:func:`~repro.runtime.active_budget`).  BMST_G stops at the
        *first* feasible tree, so it holds no feasible incumbent while
        searching — exhaustion raises ``BudgetExhaustedError`` and a
        fallback chain must supply the anytime answer.

    Raises
    ------
    InfeasibleError
        If the constraints admit no spanning tree at all (cannot happen
        for plain upper bounds with ``eps >= 0``, where the SPT star is
        always feasible, but guards lemma/constraint interactions).
    AlgorithmLimitError
        If ``max_trees`` trees were enumerated without finding a
        feasible one, or (as :class:`BudgetExhaustedError`) when the
        budget expired first.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    if budget is None:
        budget = active_budget()
    bound = net.path_bound(eps) if math.isfinite(eps) else math.inf
    # Install the resolved budget ambiently so constrained_mst's edge
    # scans (run inside the enumeration generator, in this frame's
    # context) checkpoint the caller's explicit budget, not a stale
    # ambient one.
    with use_budget(budget), span("bmst_g"):
        include: FrozenSet[Edge] = frozenset()
        exclude: FrozenSet[Edge] = frozenset()
        if use_lemmas and math.isfinite(bound):
            with span("bmst_g.lemmas"):
                include, exclude = lemma_preprocessing(net, bound, tolerance)
        traced = tracing_active()
        found_any = False
        with span("bmst_g.enumeration"):
            for tree in spanning_trees_in_cost_order(
                net, include, exclude, max_trees, budget=budget
            ):
                found_any = True
                if traced:
                    incr("bmst_g.trees_enumerated")
                if tree.longest_source_path() <= bound + tolerance:
                    return tree
    if not found_any:
        raise InfeasibleError(
            "constraints admit no spanning tree (lemma filter removed too much?)"
        )
    raise InfeasibleError(
        f"no spanning tree satisfies the bound {bound:.6g}"
    )


def bmst_brute_force(net: Net, eps: float, limit: int = 200_000) -> RoutingTree:
    """Reference optimum by scanning *all* spanning trees (tiny nets only).

    Enumerates every spanning tree (no lemma filters) and returns the
    cheapest feasible one — the oracle the tests compare BMST_G, BKEX and
    the heuristics against.
    """
    bound = net.path_bound(eps) if math.isfinite(eps) else math.inf
    best: Optional[RoutingTree] = None
    count = 0
    for tree in spanning_trees_in_cost_order(net):
        count += 1
        if count > limit:
            raise AlgorithmLimitError(f"more than {limit} spanning trees")
        if tree.longest_source_path() <= bound + 1e-9:
            # Trees arrive in nondecreasing cost: first feasible is optimal.
            best = tree
            break
    if best is None:
        raise InfeasibleError(f"no spanning tree satisfies the bound {bound:.6g}")
    return best
