"""Shortest path trees.

On a complete geometric graph the shortest source-to-sink path is the
direct edge (triangle inequality), so the SPT degenerates to a star on
the source — the minimum-radius, maximum-cost anchor of the paper's
tradeoff (Figure 11 places SPT at the high-cost end; its longest path
defines ``R``).

A general Dijkstra SPT over an arbitrary weighted graph is also provided
because the Steiner substrate (grid routing graphs, BRBC's auxiliary
graph ``Q``) needs real shortest-path trees on sparse graphs.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterable, List, Mapping, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.core.tree import RoutingTree, star_tree
from repro.runtime.budget import active_budget


def spt(net: Net) -> RoutingTree:
    """The shortest path tree of a geometric net (a source-centred star)."""
    return star_tree(net)


def spt_radius(net: Net) -> float:
    """``R``: the longest source-sink path of the SPT."""
    return net.radius()


def dijkstra(
    adjacency: Mapping[int, Iterable[Tuple[int, float]]],
    source: int,
) -> Tuple[Dict[int, float], Dict[int, int]]:
    """Dijkstra over an adjacency mapping ``node -> [(neighbor, weight)]``.

    Returns ``(dist, parent)`` dictionaries covering every node reachable
    from ``source``.  Deterministic: ties are resolved by node index.
    """
    budget = active_budget()
    dist: Dict[int, float] = {source: 0.0}
    parent: Dict[int, int] = {source: -1}
    heap: List[Tuple[float, int]] = [(0.0, source)]
    done = set()
    while heap:
        if budget is not None:
            budget.checkpoint()
        d, node = heapq.heappop(heap)
        if node in done:
            continue
        done.add(node)
        for neighbor, weight in adjacency.get(node, ()):
            if budget is not None:
                budget.checkpoint()
            if weight < 0:
                raise InvalidParameterError(
                    f"negative edge weight {weight} on ({node}, {neighbor})"
                )
            candidate = d + weight
            if neighbor not in dist or candidate < dist[neighbor] - 1e-12:
                dist[neighbor] = candidate
                parent[neighbor] = node
                heapq.heappush(heap, (candidate, neighbor))
    return dist, parent


def shortest_path_tree_of_graph(
    net: Net,
    extra_adjacency: Mapping[int, Iterable[Tuple[int, float]]],
) -> RoutingTree:
    """SPT (from the net's source) of an arbitrary graph over the terminals.

    ``extra_adjacency`` lists the graph's edges per node; weights default
    to the net metric when omitted (pass explicit weights to override).
    Used by BRBC: the final answer is the SPT of MST + shortcut edges.
    """
    dist, parent = dijkstra(extra_adjacency, SOURCE)
    n = net.num_terminals
    missing = [node for node in range(n) if node not in dist]
    if missing:
        raise InvalidParameterError(
            f"graph does not reach terminals {missing}; cannot build an SPT"
        )
    edges = [(node, parent[node]) for node in range(n) if node != SOURCE]
    return RoutingTree(net, edges)
