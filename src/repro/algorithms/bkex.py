"""BKEX — exact BMST by negative-sum-exchange search (Section 5).

BKEX starts from any feasible tree (BKT by default), then depth-first
searches *sequences* of T-exchanges whose running weight sum stays
negative.  Whenever a sequence produces a feasible tree, that tree is
strictly cheaper than the current root; it becomes the new root and the
search restarts.  The iteration stops when no negative-sum sequence
reaches a feasible tree — for unbounded depth that tree is an optimal
BMST (any spanning tree is reachable within ``V - 1`` exchanges), at
polynomial space ``O(E)``.

The paper's empirical depth data (2750 random nets, 5-15 sinks): depth 2
already reaches the optimum on 96.9% of nets, depth 4 on 99.7%, depth 6
on all of them.  ``max_depth`` exposes exactly that knob; ``None``
reproduces the unbounded search (pruned only by the non-negative-sum
rule, as in the paper's DFS_EXCHANGE).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.edges import non_tree_edges
from repro.core.exceptions import BudgetExhaustedError, InvalidParameterError
from repro.core.net import Net
from repro.core.tree import RoutingTree
from repro.algorithms.bkrus import bkrus
from repro.observability import span, tracing_active
from repro.observability.trace import Span
from repro.runtime.budget import Budget, active_budget, use_budget


@dataclass
class BkexStats:
    """Search statistics for one :func:`bkex` run."""

    iterations: int = 0
    """Times a cheaper feasible tree replaced the root."""
    exchanges_tried: int = 0
    max_depth_reached: int = 0
    depth_histogram: Dict[int, int] = field(default_factory=dict)
    """Exchanges examined per sequence depth (1 = first exchange)."""

    def publish(self, target: Span) -> None:
        """Emit these totals as counters on an open span."""
        target.incr("bkex.exchanges_tried", self.exchanges_tried)
        target.incr("bkex.improvements", self.iterations)
        target.incr("bkex.max_depth", self.max_depth_reached)
        for depth in sorted(self.depth_histogram):
            target.incr(f"bkex.depth.{depth}", self.depth_histogram[depth])


def _candidate_exchanges(tree: RoutingTree):
    """Yield ``((remove, add), diff)`` in the paper's DFS_EXCHANGE order:
    for each non-tree edge, walk the induced cycle retreating the deeper
    endpoint toward the common ancestor (Figure 8)."""
    parents = tree.parents()
    depths = tree.depths()
    dist = tree.net.dist
    for x, y in non_tree_edges(tree.num_terminals, tree.edges):
        add_weight = float(dist[x, y])
        u, v = x, y
        while u != v:
            if depths[u] > depths[v]:
                u, v = v, u
            father = parents[v]
            diff = add_weight - float(dist[v, father])
            yield ((v, father), (x, y)), diff
            v = father


def _dfs_exchange(
    root: RoutingTree,
    is_feasible: "Callable[[RoutingTree], bool]",
    max_depth: Optional[int],
    stats: Optional[BkexStats],
    tolerance: float,
    budget: Optional[Budget] = None,
) -> Optional[RoutingTree]:
    """The paper's DFS_EXCHANGE, run iteratively with an explicit stack.

    Returns a feasible tree cheaper than ``root``, or None.  The running
    weight sum along a search path equals ``cost(tree) - cost(root)``
    (each exchange changes the cost by exactly its weight), so any
    revisit of an ancestor state repeats an identical subsearch; the
    ancestor-signature set prunes those without losing completeness —
    and guarantees termination, which the naive recursion does not
    (two opposite exchanges can ping-pong forever at a negative sum).
    """
    # The running weight sum of a search path equals
    # ``cost(tree) - cost(root)`` — a function of the *state*, not the
    # path — so exploring a state twice with the same (or less)
    # remaining depth budget repeats an identical, fruitless subsearch.
    # ``explored`` memoises the largest remaining budget each infeasible
    # state has been expanded with; this both guarantees termination
    # (the naive recursion can ping-pong between two trees forever at a
    # negative sum) and collapses the exponential re-exploration that
    # makes the textbook DFS impractical beyond a handful of sinks.
    infinite = float("inf")

    def remaining(depth: int) -> float:
        return infinite if max_depth is None else max_depth - depth

    explored = {root.edge_set(): remaining(0)}
    stack = [(root, 0.0, _candidate_exchanges(root))]
    while stack:
        tree, weight_sum, candidates = stack[-1]
        advanced = False
        for (remove, add), diff in candidates:
            if budget is not None:
                budget.checkpoint()
            if stats is not None:
                stats.exchanges_tried += 1
                depth = len(stack)
                stats.max_depth_reached = max(stats.max_depth_reached, depth)
                stats.depth_histogram[depth] = (
                    stats.depth_histogram.get(depth, 0) + 1
                )
            if diff + weight_sum >= -tolerance:
                continue
            candidate = tree.with_exchange(remove, add, validate=False)
            signature = candidate.edge_set()
            depth_left = remaining(len(stack))
            if explored.get(signature, -1.0) >= depth_left:
                continue
            if is_feasible(candidate):
                return candidate
            if depth_left > 0:
                explored[signature] = depth_left
                stack.append(
                    (candidate, diff + weight_sum, _candidate_exchanges(candidate))
                )
                advanced = True
                break
        if not advanced:
            stack.pop()
    return None


def bkex(
    net: Net,
    eps: float,
    initial: Optional[RoutingTree] = None,
    max_depth: Optional[int] = None,
    stats: Optional[BkexStats] = None,
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> RoutingTree:
    """Optimal (or depth-limited) BMST via negative-sum exchanges.

    Parameters
    ----------
    net:
        The net to route.
    eps:
        Non-negative slack; the bound is ``(1 + eps) * R``.
    initial:
        Feasible starting tree; defaults to ``bkrus(net, eps)`` (the
        paper's Algorithm BKEX, line 1).  Must satisfy the bound.
    max_depth:
        Cap on exchange-sequence length.  ``None`` = unbounded (exact on
        every net the paper tested); small values trade optimality for
        speed exactly as in the paper's depth study.
    stats:
        Optional :class:`BkexStats` to fill in.
    budget:
        Optional :class:`~repro.runtime.Budget`; defaults to the ambient
        one (:func:`~repro.runtime.active_budget`).  BKEX always holds a
        feasible tree (the current root), so on exhaustion it returns
        that incumbent instead of raising — anytime semantics; callers
        can inspect ``budget.exhausted`` for honesty.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    if budget is None:
        budget = active_budget()
    # Install the resolved budget ambiently so shared helpers (edge
    # streams, seeding constructions) checkpoint the same budget the
    # caller passed explicitly — explicit beats ambient everywhere.
    with use_budget(budget):
        bound = net.path_bound(eps) if math.isfinite(eps) else math.inf
        tree = initial if initial is not None else bkrus(net, eps)
        if tree.longest_source_path() > bound + tolerance:
            raise InvalidParameterError(
                "initial tree violates the path-length bound; BKEX needs a "
                "feasible starting solution"
            )

        def is_feasible(candidate: RoutingTree) -> bool:
            return candidate.longest_source_path() <= bound + tolerance

        # Under an active trace session, fill a (caller's or throwaway)
        # stats object and publish its totals on the ``bkex`` span.
        local_stats = stats
        if local_stats is None and tracing_active():
            local_stats = BkexStats()
        with span("bkex") as bkex_span:
            result = exchange_descent(
                tree,
                is_feasible,
                max_depth=max_depth,
                stats=local_stats,
                tolerance=tolerance,
                budget=budget,
            )
            if bkex_span is not None and local_stats is not None:
                local_stats.publish(bkex_span)
        return result


def exchange_descent(
    tree: RoutingTree,
    is_feasible: Callable[[RoutingTree], bool],
    max_depth: Optional[int] = None,
    stats: Optional[BkexStats] = None,
    tolerance: float = 1e-9,
    budget: Optional[Budget] = None,
) -> RoutingTree:
    """Iterate negative-sum-exchange search under a custom feasibility.

    The generalised engine behind :func:`bkex`; the lower+upper bounded
    solver of Section 6 plugs in a two-sided predicate.  ``tree`` must
    already satisfy ``is_feasible``.

    ``tree`` is a feasible incumbent throughout, so budget exhaustion is
    absorbed here: the current root is returned as the anytime answer
    (``budget.exhausted`` stays set for the caller to inspect).
    """
    while True:
        try:
            better = _dfs_exchange(
                tree, is_feasible, max_depth, stats, tolerance, budget
            )
        except BudgetExhaustedError:
            return tree
        if better is None:
            return tree
        assert better.cost < tree.cost, "negative-sum exchange must reduce cost"
        tree = better
        if stats is not None:
            stats.iterations += 1


def bkex_depth_profile(
    net: Net,
    eps: float,
    depths: Tuple[int, ...] = (1, 2, 3, 4, 5, 6),
    reference: Optional[RoutingTree] = None,
) -> List[Tuple[int, float, bool]]:
    """Cost reached at each depth cap, and whether it matches the optimum.

    Reproduces the paper's depth study (Section 5: 96.9% at depth 2,
    99.7% at depth 4 over 2750 random nets).  ``reference`` defaults to
    the unbounded-depth BKEX result.

    Returns a list of ``(depth, cost, reached_reference)`` rows.
    """
    if reference is None:
        reference = bkex(net, eps, max_depth=None)
    rows = []
    for depth in depths:
        tree = bkex(net, eps, max_depth=depth)
        rows.append(
            (depth, tree.cost, bool(abs(tree.cost - reference.cost) <= 1e-9))
        )
    return rows
