"""LAST — Light Approximate Shortest-path Trees (Khuller et al.).

The shallow-light family the paper's Section 2 draws on has two classic
provable constructions: BRBC (global radius bound) and Khuller,
Raghavachari & Young's LAST, which guarantees the *per-sink* stretch

    ``path(S, x) <= alpha * dist(S, x)``        for every sink ``x``

at cost ``<= (1 + 2 / (alpha - 1)) * cost(MST)``.  LAST is therefore
the provable counterpart of this library's heuristic per-sink variant
(`bkrus_per_sink` with ``alpha = 1 + eps``), and a natural extra
baseline for its policy study.

The algorithm is a single DFS over the MST: a tentative distance label
``d[v]`` is relaxed along every traversed tree edge (both downward and
on the way back up), and whenever a vertex's label exceeds its stretch
budget the vertex is relinked straight to the source (on a complete
geometric graph the shortest S-path is the direct edge) and its label
reset — the classical potential argument charges all shortcuts to at
most ``2 / (alpha - 1)`` times the DFS tour, i.e. the MST cost.
"""

from __future__ import annotations

import math
from typing import List

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.core.tree import RoutingTree, tree_from_parent_array
from repro.algorithms.mst import mst


def last_tree(net: Net, alpha: float) -> RoutingTree:
    """Build the LAST for stretch factor ``alpha > 1``.

    ``alpha = 1 + eps`` matches the per-sink bound convention used by
    :func:`repro.algorithms.per_sink.bkrus_per_sink`; ``alpha = inf``
    returns the MST unchanged.
    """
    if math.isnan(alpha) or alpha <= 1.0:
        if math.isinf(alpha):
            return mst(net)
        raise InvalidParameterError(f"alpha must exceed 1, got {alpha}")
    if math.isinf(alpha):
        return mst(net)

    base = mst(net)
    dist = net.dist
    n = net.num_terminals
    adjacency = base.adjacency()

    labels = [math.inf] * n
    labels[SOURCE] = 0.0
    parent = [-1] * n

    def relax(u: int, v: int) -> None:
        candidate = labels[u] + float(dist[u, v])
        if candidate < labels[v] - 1e-12:
            labels[v] = candidate
            parent[v] = u

    def check(v: int) -> None:
        if v != SOURCE and labels[v] > alpha * float(dist[SOURCE, v]) + 1e-12:
            labels[v] = float(dist[SOURCE, v])
            parent[v] = SOURCE

    # Iterative DFS over the MST, relaxing on entry and on return.
    visited = [False] * n
    stack: List[tuple] = [(SOURCE, -1, iter(sorted(adjacency[SOURCE])))]
    visited[SOURCE] = True
    check(SOURCE)
    while stack:
        node, come_from, children = stack[-1]
        advanced = False
        for child in children:
            if visited[child]:
                continue
            visited[child] = True
            relax(node, child)
            check(child)
            stack.append((child, node, iter(sorted(adjacency[child]))))
            advanced = True
            break
        if not advanced:
            stack.pop()
            if come_from >= 0:
                relax(node, come_from)
                check(come_from)

    return tree_from_parent_array(net, parent)


def last_cost_bound(net: Net, alpha: float) -> float:
    """The KRY guarantee: ``(1 + 2 / (alpha - 1)) * cost(MST)``."""
    if alpha <= 1.0:
        raise InvalidParameterError(f"alpha must exceed 1, got {alpha}")
    return (1.0 + 2.0 / (alpha - 1.0)) * mst(net).cost


def last_stretch_bound(tree: RoutingTree, alpha: float) -> bool:
    """Verify the per-sink stretch guarantee on a built tree."""
    paths = tree.source_path_lengths()
    dist = tree.net.dist
    for sink in range(1, tree.num_terminals):
        if paths[sink] > alpha * float(dist[SOURCE, sink]) + 1e-9:
            return False
    return True
