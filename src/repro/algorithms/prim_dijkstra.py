"""Prim-Dijkstra tradeoff trees (Alpert, Hu, Huang, Kahng — ref [9]).

The paper's Section 1 cites this construction as the prior art that
trades *average* source-to-sink path length for total cost with a linear
combining objective: grow a tree from the source, always adding the pair
``(u, v)`` minimising

    ``c * path(S, u) + dist(u, v)``       for  ``c in [0, 1]``.

``c = 0`` is Prim (MST); ``c = 1`` is Dijkstra (SPT on a complete
geometric graph, i.e. the star).  Unlike BKRUS the construction offers no
hard bound on the longest path — which is exactly the gap the reproduced
paper fills — but it is a useful extra baseline for the tradeoff curves.
"""

from __future__ import annotations

import math
from typing import List, Tuple

import numpy as np

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.core.tree import RoutingTree
from repro.runtime.budget import active_budget


def prim_dijkstra(net: Net, c: float) -> RoutingTree:
    """Grow the Prim-Dijkstra tree for mixing parameter ``c``.

    Parameters
    ----------
    net:
        The net to route.
    c:
        Mixing weight in ``[0, 1]``; 0 reproduces Prim/MST behaviour and
        1 reproduces Dijkstra/SPT behaviour.
    """
    if not (0.0 <= c <= 1.0) or math.isnan(c):
        raise InvalidParameterError(f"c must lie in [0, 1], got {c}")
    n = net.num_terminals
    dist = net.dist
    in_tree = np.zeros(n, dtype=bool)
    in_tree[SOURCE] = True
    path_len = np.zeros(n)
    best_key = c * 0.0 + dist[SOURCE].copy()
    best_from = np.full(n, SOURCE, dtype=int)
    best_key[SOURCE] = np.inf
    edges: List[Tuple[int, int]] = []
    budget = active_budget()
    for _ in range(n - 1):
        if budget is not None:
            budget.checkpoint()
        v = int(np.argmin(np.where(in_tree, np.inf, best_key)))
        u = int(best_from[v])
        in_tree[v] = True
        path_len[v] = path_len[u] + float(dist[u, v])
        edges.append((u, v))
        keys = c * path_len[v] + dist[v]
        better = (~in_tree) & (keys < best_key)
        best_key[better] = keys[better]
        best_from[better] = v
        best_key[v] = np.inf
    return RoutingTree(net, edges)


def prim_dijkstra_sweep(net: Net, values: List[float]) -> List[Tuple[float, RoutingTree]]:
    """Trees for each mixing value, for tradeoff-curve plotting."""
    return [(c, prim_dijkstra(net, c)) for c in values]
