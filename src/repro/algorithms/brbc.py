"""BRBC — Bounded Radius, Bounded Cost trees (Cong et al., 1992).

The second baseline of Section 2.  BRBC is the provably-good construction:

1. Build the MST and set ``Q = MST``.
2. Walk the MST's depth-first traversal (each edge traversed twice, as in
   the classical 2-approximation tour), accumulating traversed wire
   length since the last shortcut.
3. Whenever the accumulated length reaches ``eps * R``, add the direct
   source edge to the current node ("shortcut") and reset the
   accumulator.
4. Return the shortest path tree of ``Q`` from the source.

Guarantees: radius ``<= (1 + eps) * R`` and
``cost(Q) <= (1 + 2 / eps) * cost(MST)``.  The reproduced paper points
out the practical weakness — shortcuts are full shortest paths and can
add unnecessary cost, which is what Tables 2/4 quantify against BKRUS.

``eps = 0`` degenerates to the SPT star; ``eps = inf`` returns the MST
(re-rooted at the source, which does not change the edge set).
"""

from __future__ import annotations

import math
from typing import Dict, List, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.core.tree import RoutingTree
from repro.algorithms.mst import mst
from repro.algorithms.spt import shortest_path_tree_of_graph


def depth_first_tour(tree: RoutingTree, root: int = SOURCE) -> List[int]:
    """The DFS traversal sequence of ``tree`` from ``root``.

    Every edge appears exactly twice (down and up), so consecutive
    entries are always tree-adjacent; this is the walk BRBC measures.
    Children are visited in ascending node order for determinism.
    """
    adjacency = tree.adjacency()
    tour = [root]
    visited = {root}
    # Iterative DFS recording the return to the parent as well.
    frames: List[Tuple[int, List[int]]] = [(root, sorted(adjacency[root]))]
    while frames:
        node, pending = frames[-1]
        advanced = False
        while pending:
            child = pending.pop(0)
            if child in visited:
                continue
            visited.add(child)
            tour.append(child)
            frames.append((child, sorted(adjacency[child])))
            advanced = True
            break
        if not advanced:
            frames.pop()
            if frames:
                tour.append(frames[-1][0])
    return tour


def brbc(
    net: Net,
    eps: float,
    tolerance: float = 1e-9,
) -> RoutingTree:
    """Construct the BRBC tree for slack parameter ``eps``."""
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    base = mst(net)
    if math.isinf(eps):
        return base

    radius = net.radius()
    threshold = eps * radius
    dist = net.dist
    n = net.num_terminals

    # Q starts as the MST; adjacency maps node -> [(neighbor, weight)].
    adjacency: Dict[int, List[Tuple[int, float]]] = {i: [] for i in range(n)}
    for u, v in base.edges:
        w = float(dist[u, v])
        adjacency[u].append((v, w))
        adjacency[v].append((u, w))

    shortcut_to = set()

    def add_shortcut(node: int) -> None:
        if node == SOURCE or node in shortcut_to:
            return
        shortcut_to.add(node)
        w = float(dist[SOURCE, node])
        adjacency[SOURCE].append((node, w))
        adjacency[node].append((SOURCE, w))

    tour = depth_first_tour(base)
    accumulated = 0.0
    for prev, node in zip(tour, tour[1:]):
        accumulated += float(dist[prev, node])
        if accumulated + tolerance >= threshold:
            add_shortcut(node)
            accumulated = 0.0

    return shortest_path_tree_of_graph(net, adjacency)


def brbc_auxiliary_cost(net: Net, eps: float) -> float:
    """Total edge weight of the auxiliary graph ``Q`` (for the cost bound).

    Exposed for tests of the ``cost(Q) <= (1 + 2/eps) * cost(MST)``
    guarantee; the returned value includes both MST edges and shortcuts.
    """
    if eps <= 0:
        raise InvalidParameterError("auxiliary cost bound needs eps > 0")
    base = mst(net)
    dist = net.dist
    threshold = eps * net.radius()
    total = base.cost
    tour = depth_first_tour(base)
    accumulated = 0.0
    seen = set()
    for prev, node in zip(tour, tour[1:]):
        accumulated += float(dist[prev, node])
        if accumulated >= threshold - 1e-9:
            if node != SOURCE and node not in seen:
                seen.add(node)
                total += float(dist[SOURCE, node])
            accumulated = 0.0
    return total
