"""Vectorized BKRUS backend (``bkrus_np``) — identical trees, batched math.

This module re-implements the BKRUS scan of :mod:`repro.algorithms.bkrus`
as block numpy operations while reproducing the reference construction
*exactly*: same accepted edges in the same order, same recorded
rejections, same trace counters, bit-identical floating-point decisions.
It exists purely as a faster backend behind :mod:`repro.core.backends`;
the per-edge scan in ``bkrus.py`` remains the always-available oracle.

Why a straight translation is not enough
----------------------------------------
The reference spends its time on ~50k per-edge events (cycle skips,
condition 3-a/3-b tests) and ~1.2k ``Merge`` block updates.  Issuing a
handful of numpy calls *per event* is slower than the pure scan — small
numpy calls cost microseconds of dispatch each.  The kernel therefore
batches along three axes:

* **Windowed verdict fills.**  Edges enter the scan in blocks (windows
  grow adaptively: small while the forest churns, large once verdicts
  stay fresh).  One vectorized pass classifies every block edge against
  the current forest: already-a-cycle (dropped silently — exactly the
  reference's condition-(2) skip), permanently infeasible (a *pending
  rejection*; sound because Lemma 3.1 makes bound rejections permanent),
  will-accept (3-a holds, or an exact 3-b witness was found in bulk), or
  needs-3-b-resolution.  Only the last two reach the Python walk,
  eliminating the vast majority of events up front.

* **Packed merge rounds.**  A Python walk consumes the surviving
  candidates in exact scan order, accepting every merge whose two
  components are untouched *in this round*; the first candidate that
  touches a component merged this round ends the round.  All of a
  round's merges are then applied as one flat-indexed batch of numpy
  updates (the ``Merge`` cross-block writes, radii, source paths,
  witness minima and q-vectors of every merge at once).  Merges within
  one round join pairwise-disjoint components, so batching cannot
  reorder observable state.

* **Label versioning + cross-net lanes.**  Every merge assigns a fresh
  component label, so "has this edge's fill-time verdict gone stale?"
  is two integer comparisons in the walk; stale verdicts are refreshed
  with exact scalar arithmetic against round-start state (valid
  precisely because the walk stops at components touched this round).
  :func:`bkrus_np_many` additionally scans several nets in lockstep,
  concatenating all lanes' round updates into single numpy calls.

Floating-point fidelity
-----------------------
Every comparison that *decides* an accept or reject either evaluates
the reference expression with the same operand values and association
order (IEEE-754 addition is deterministic, so vectorizing an
elementwise sum changes nothing), or is a monotone bound on it:

* the witness-floor prefilter uses ``min(ds + r) <= min(ds + max(r,
  ...))``, which holds exactly in floats because ``a >= b`` implies
  ``c + a >= c + b``;
* radii updates use ``max_y (A[x] + Q[y]) == A[x] + max(Q)`` — exact
  for the same reason;
* the q-vector prefilter (``_QMARGIN`` below) is the only approximate
  quantity in the kernel, and it is *conservative by construction*: it
  can only prove infeasibility with a safety margin orders of magnitude
  wider than its accumulated rounding error, and anything it cannot
  prove falls through to an exact member scan.

The differential harness (``tests/test_backends_differential.py``)
asserts tree-for-tree equality against the oracle.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.edges import sorted_edge_arrays
from repro.core.exceptions import InfeasibleError, InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.core.partial_forest import PartialForest
from repro.core.tree import RoutingTree
from repro.algorithms.bkrus import KruskalTrace
from repro.observability import span, tracing_active
from repro.runtime.budget import Budget, active_budget

__all__ = [
    "bkrus_np",
    "bkrus_np_many",
    "condition_3a",
    "condition_3b",
]

_FILL_START = 256
_FILL_CAP = 4096
"""Adaptive fill window: each lane starts classifying small blocks (the
early forest churns, so verdicts go stale quickly) and doubles the
window after every fill up to the cap (late scan prefixes are mostly
cycles and permanent rejections, best disposed of in bulk)."""

# Verdict codes shared by the fill classifier and the walk.  _ACCEPT
# means "accept if the labels are still fresh" — it covers both a 3-a
# pass and an exact 3-b witness found during the fill.
_ACCEPT = 1
_REJECT = 2
_MAYBE_3B = 3

_DEFER_CAP = 24
"""Deferrals allowed per walk round.  Blocking is contagious (see
:meth:`_BatchScan._walk`), so an uncapped walk can re-defer most of the
window every round; past the cap the round simply ends early — exactly
the pre-deferral behavior, and equally sound."""

_QMARGIN = 1.0 - 1e-10
"""Safety factor for the q-vector prefilter.  ``qq[x]`` tracks
``min over members y of comp(x) of ds[y] + P[y, x]`` through float
min/add chains whose accumulated *relative* error is bounded by a few
hundred ulps (every quantity is non-negative, so errors cannot cancel
sign); ``1e-10`` exceeds that bound by ~3 orders of magnitude.  A
filter hit therefore proves the exact test would reject; a miss decides
nothing and falls through to the exact scan."""


# ----------------------------------------------------------------------
# Standalone feasibility predicates
# ----------------------------------------------------------------------
# Scalar-call forms of the conditions the kernel evaluates in bulk; the
# brute-force cross-check tests compare these (and, via the differential
# harness, the bulk kernel) against naive per-node loops.


def condition_3a(
    forest: PartialForest, u: int, v: int, bound: float, tolerance: float = 1e-9
) -> bool:
    """Condition (3-a): merge feasibility when ``u``'s tree holds the source.

    Evaluates ``path(S, u) + D[u, v] + radius(v) <= bound + tolerance``
    with exactly the reference's operand order.
    """
    d = float(forest.net.dist[u, v])
    return forest.path(SOURCE, u) + d + forest.radius(v) <= bound + tolerance


def condition_3b(
    forest: PartialForest, u: int, v: int, bound: float, tolerance: float = 1e-9
) -> bool:
    """Condition (3-b): a feasible witness exists in the merged tree.

    Vectorized over the members of both components via
    :meth:`PartialForest.merged_radii` — the expression the kernel's
    batched 3-b resolution reproduces.
    """
    nodes, radii = forest.merged_radii(u, v)
    slack = forest.net.dist[SOURCE, nodes] + radii
    return bool(slack.min() <= bound + tolerance)


# ----------------------------------------------------------------------
# Per-net lane state
# ----------------------------------------------------------------------


class _Lane:
    """Scan state of one net inside the batched kernel."""

    __slots__ = (
        "net", "index", "n", "nbase", "pbase", "m", "bound", "btol",
        "W", "U", "V", "fill_pos", "window", "exhausted", "need_fill",
        "worig", "wgu", "wgv", "wu", "wv", "wd", "wcode", "wlu", "wlv",
        "wpos", "deferred", "pend", "merged", "done", "srclab",
        "accepted", "rejected_walk", "merge_sizes", "treelog",
    )

    def __init__(self, net: Net, index: int, nbase: int, pbase: int,
                 bound: float, tolerance: float) -> None:
        self.net = net
        self.index = index
        self.n = net.num_terminals
        self.nbase = nbase
        self.pbase = pbase
        self.bound = bound
        self.btol = bound + tolerance
        self.W, self.U, self.V = sorted_edge_arrays(net)
        self.m = int(self.W.shape[0])
        self.fill_pos = 0
        self.window = _FILL_START
        self.exhausted = self.m == 0
        self.need_fill = False
        # Walk candidate window (plain Python lists for per-edge speed).
        self.worig: List[int] = []
        self.wgu: List[int] = []
        self.wgv: List[int] = []
        self.wu: List[int] = []
        self.wv: List[int] = []
        self.wd: List[float] = []
        self.wcode: List[int] = []
        self.wlu: List[int] = []
        self.wlv: List[int] = []
        self.wpos = 0
        # Walk indices deferred to the next round because a component
        # was blocked; always ascending, always below ``wpos``.
        self.deferred: List[int] = []
        # Fill-time permanent rejections as (orig, u, v) array triples;
        # replayed against the merge log at trace-build time to decide
        # whether the reference scan would have seen a cycle instead.
        self.pend: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        self.merged = 0
        self.done = self.n <= 1
        self.srclab = nbase + SOURCE
        self.accepted: List[Tuple[int, int, int]] = []
        self.rejected_walk: List[Tuple[int, int, int]] = []
        self.merge_sizes: List[Tuple[int, int]] = []
        # Merge-tree log for the trace replay: leaf tids are local node
        # ids, accept ``k`` creates internal tid ``n + k``.
        self.treelog: List[Tuple[int, int]] = []


class _BatchScan:
    """The batched bounded-Kruskal engine over one or more lanes."""

    def __init__(self, nets: Sequence[Net], bounds: Sequence[float],
                 tolerance: float, budget: Optional[Budget]) -> None:
        self.budget = budget
        self.lanes: List[_Lane] = []
        nbase = 0
        pbase = 0
        for index, (net, bound) in enumerate(zip(nets, bounds)):
            lane = _Lane(net, index, nbase, pbase, bound, tolerance)
            self.lanes.append(lane)
            nbase += lane.n
            pbase += lane.n * lane.n
        total = nbase
        self.total_nodes = total
        # Flat cross-lane state.  P is symmetric, so only the canonical
        # triangle is stored: ``P_flat[lane.pbase + min(x,y) * n +
        # max(x,y)]`` is the lane's P[x, y].  This halves the Merge
        # cross-block scatter volume — the dominant memory traffic —
        # at the cost of a min/max composite on reads.  Row 0 doubles
        # as the source-path vector (SOURCE == 0 is always the min);
        # the never-written diagonal supplies P[x, x] == 0.
        self.P_flat = np.zeros(pbase)
        self.r_np = np.zeros(total)
        self.comp_np = np.arange(total, dtype=np.int64)
        self.comp: List[int] = list(range(total))
        ds = np.empty(total)
        warg = np.empty(total, dtype=np.int64)
        for lane in self.lanes:
            ds[lane.nbase:lane.nbase + lane.n] = lane.net.dist[SOURCE, :]
            warg[lane.nbase:lane.nbase + lane.n] = np.arange(lane.n)
        self.ds_np = ds
        self.ds_py: List[float] = ds.tolist()
        # Witness floor per component (min over members of ds[x] + r[x])
        # and the local id of a member attaining it, both node-indexed.
        self.wmin_np = ds.copy()
        self.warg_np = warg
        # q-vector: conservative min over members x of ds[x] + P[x, *]
        # (see _QMARGIN); a singleton's only member is itself, P[x,x]=0.
        self.qq_np = ds.copy()
        # Per-label tables hold only *merged* components; a label below
        # ``total_nodes`` is a singleton whose record is synthesized on
        # demand (members: the node itself; tid: its local id).
        self.members_np: Dict[int, np.ndarray] = {}
        # Per-label record: (size, member global ids, merge-tree tid).
        self.comps: Dict[int, Tuple[int, List[int], int]] = {}
        self.labelgen = itertools.count(total)
        self.merges: List[tuple] = []
        # Lane geometry as arrays (indexed by lane.index) plus a shared
        # identity ramp whose 1-slices stand in for singleton member
        # arrays — consumers only read them or copy via concatenate.
        self.lane_n = np.array([lane.n for lane in self.lanes], dtype=np.int64)
        self.lane_pb = np.array(
            [lane.pbase for lane in self.lanes], dtype=np.int64
        )
        self.lane_nb = np.array(
            [lane.nbase for lane in self.lanes], dtype=np.int64
        )
        self._iota = np.arange(
            max((lane.n for lane in self.lanes), default=0), dtype=np.int64
        )

    # ------------------------------------------------------------------
    # Window fills: bulk verdicts for the next block of edges
    # ------------------------------------------------------------------
    def _fill(self, lane: _Lane) -> bool:
        """Classify the next edge block(s); True if the walk gained work."""
        gained = False
        P = self.P_flat
        r = self.r_np
        while not gained and not lane.exhausted:
            lo = lane.fill_pos
            hi = min(lo + lane.window, lane.m)
            lane.fill_pos = hi
            lane.window = min(lane.window * 2, _FILL_CAP)
            if hi >= lane.m:
                lane.exhausted = True
            w = lane.W[lo:hi]
            ul = lane.U[lo:hi]
            vl = lane.V[lo:hi]
            gu = ul + lane.nbase
            gv = vl + lane.nbase
            cu = self.comp_np[gu]
            cv = self.comp_np[gv]
            alive = np.flatnonzero(cu != cv)
            if alive.size == 0:
                continue
            cu = cu[alive]
            cv = cv[alive]
            w_a = w[alive]
            gu_a = gu[alive]
            gv_a = gv[alive]
            ul_a = ul[alive]
            vl_a = vl[alive]
            nbase = lane.nbase
            pbase = lane.pbase
            n = lane.n
            btol = lane.btol
            srcl = lane.srclab
            su = cu == srcl
            sv = cv == srcl
            is3a = su | sv
            rgu = r[gu_a]
            rgv = r[gv_a]
            # Reference association: (path(S, u) + d) + r(v).  The P
            # row-0 gather reads inert zeros for non-source components;
            # those entries of ``lhs`` are masked out by ``is3a``.
            spu = P[pbase + ul_a]
            spv = P[pbase + vl_a]
            lhs = np.where(su, (spu + w_a) + rgv, (spv + w_a) + rgu)
            feas3a = lhs <= btol
            # Exact 3-b witness probe: each side's witness slack is one
            # element of the reference slack vector (same operands, same
            # association), so slack <= bound proves 3-b outright.
            x = self.warg_np[gu_a]
            pxu = P[pbase + np.minimum(x, ul_a) * n + np.maximum(x, ul_a)]
            wsl_u = self.ds_np[x + nbase] + np.maximum(
                r[x + nbase], (pxu + w_a) + rgv
            )
            y = self.warg_np[gv_a]
            pyv = P[pbase + np.minimum(y, vl_a) * n + np.maximum(y, vl_a)]
            wsl_v = self.ds_np[y + nbase] + np.maximum(
                r[y + nbase], (pyv + w_a) + rgu
            )
            wacc = (wsl_u <= btol) | (wsl_v <= btol)
            # A side is *provably* infeasible when either lower bound
            # clears the bound: the witness floor min(ds + r) (exact) or
            # the q-vector bound ds + P[.,u] + d + r(v) (margined).
            fail_u = (self.wmin_np[gu_a] > btol) | (
                (self.qq_np[gu_a] + w_a + rgv) * _QMARGIN > btol
            )
            fail_v = (self.wmin_np[gv_a] > btol) | (
                (self.qq_np[gv_a] + w_a + rgu) * _QMARGIN > btol
            )
            code = np.where(
                is3a,
                np.where(feas3a, _ACCEPT, _REJECT),
                np.where(
                    wacc,
                    _ACCEPT,
                    np.where(fail_u & fail_v, _REJECT, _MAYBE_3B),
                ),
            )
            rej = code == _REJECT
            if rej.any():
                lane.pend.append((lo + alive[rej], ul_a[rej], vl_a[rej]))
            keep = np.flatnonzero(~rej)
            if keep.size:
                lane.worig.extend((lo + alive[keep]).tolist())
                lane.wgu.extend(gu_a[keep].tolist())
                lane.wgv.extend(gv_a[keep].tolist())
                lane.wu.extend(ul_a[keep].tolist())
                lane.wv.extend(vl_a[keep].tolist())
                lane.wd.extend(w_a[keep].tolist())
                lane.wcode.extend(code[keep].tolist())
                lane.wlu.extend(cu[keep].tolist())
                lane.wlv.extend(cv[keep].tolist())
                gained = True
        return gained

    # ------------------------------------------------------------------
    # The walk: exact scan-order consumption of one round
    # ------------------------------------------------------------------
    def _walk(self, lane: _Lane) -> bool:
        """Consume candidates for one round; True on any progress.

        Processing order is strictly ascending by scan position: last
        round's deferred candidates first (their positions all precede
        the unconsumed tail), then the tail.  A candidate touching a
        *blocked* component is deferred to the next round, and blocking
        is contagious — an accept blocks both merged components (their
        round-start state is stale), a deferral blocks both of its
        components (no later merge may change what the deferred edge
        will see).  Together with the ascending order this guarantees
        that when a candidate is actually evaluated, the merge history
        of its two components is exactly the reference scan's at that
        position — every verdict, cycle skip and recorded size is exact.
        """
        comp = self.comp
        worig, wd = lane.worig, lane.wd
        wgu, wgv = lane.wgu, lane.wgv
        wcode, wlu, wlv = lane.wcode, lane.wlu, lane.wlv
        btol = lane.btol
        blocked: Set[int] = set()
        defer_old = lane.deferred
        defer_new: List[int] = []
        lane.deferred = defer_new
        di = 0
        dn = len(defer_old)
        i = lane.wpos
        start = i
        end = len(worig)
        visited = False
        while True:
            if di < dn:
                j = defer_old[di]
                di += 1
                from_tail = False
            elif i < end:
                j = i
                i += 1
                from_tail = True
            else:
                lane.need_fill = not lane.exhausted
                break
            lu = comp[wgu[j]]
            lv = comp[wgv[j]]
            if lu == lv:
                continue
            if lu in blocked or lv in blocked:
                defer_new.append(j)
                blocked.add(lu)
                blocked.add(lv)
                if len(defer_new) >= _DEFER_CAP:
                    # Rewind the tail cursor if j came from the tail so
                    # the next round resumes there instead of deferring.
                    if from_tail:
                        defer_new.pop()
                        i -= 1
                    break
                continue
            visited = True
            c = wcode[j]
            if lu != wlu[j] or lv != wlv[j]:
                # Stale verdict: refresh against round-start state
                # (exact — neither component was touched this round, so
                # this *is* the reference's state at this scan position).
                d = wd[j]
                srclab = lane.srclab
                if lu == srclab:
                    c = (
                        _ACCEPT
                        if (self.P_flat.item(lane.pbase + lane.wu[j]) + d)
                        + self.r_np.item(wgv[j]) <= btol
                        else _REJECT
                    )
                elif lv == srclab:
                    c = (
                        _ACCEPT
                        if (self.P_flat.item(lane.pbase + lane.wv[j]) + d)
                        + self.r_np.item(wgu[j]) <= btol
                        else _REJECT
                    )
                else:
                    c = _MAYBE_3B
                wcode[j] = c
                wlu[j] = lu
                wlv[j] = lv
            if c == _MAYBE_3B:
                c = self._resolve_3b(lane, j, lu, lv)
            if c == _REJECT:
                lane.rejected_walk.append((worig[j], lane.wu[j], lane.wv[j]))
                continue
            self._accept(lane, j, lu, lv, blocked)
            if lane.done:
                break
        # Carry unprocessed deferrals across a done break.
        if di < dn:
            defer_new.extend(defer_old[di:])
        lane.wpos = i
        return visited or i != start or len(defer_new) != dn

    def _resolve_3b(self, lane: _Lane, i: int, lu: int, lv: int) -> int:
        """Exact condition (3-b) for walk candidate ``i`` against
        round-start state: witness shortcuts and per-side prefilters
        first, full member scans only where still inconclusive."""
        u = lane.wu[i]
        v = lane.wv[i]
        d = lane.wd[i]
        gu = lane.wgu[i]
        gv = lane.wgv[i]
        btol = lane.btol
        P = self.P_flat
        pbase = lane.pbase
        n = lane.n
        nbase = lane.nbase
        r = self.r_np
        ds = self.ds_py
        ru = r.item(gu)
        rv = r.item(gv)
        # A witness's slack is one element of the reference slack vector
        # (same operands, same order); slack(x) <= bound proves the
        # vector minimum is too.
        x = self.warg_np.item(gu)
        gx = nbase + x
        pxu = P.item(pbase + x * n + u if x < u else pbase + u * n + x)
        if ds[gx] + max(r.item(gx), (pxu + d) + rv) <= btol:
            return _ACCEPT
        y = self.warg_np.item(gv)
        gy = nbase + y
        pyv = P.item(pbase + y * n + v if y < v else pbase + v * n + y)
        if ds[gy] + max(r.item(gy), (pyv + d) + ru) <= btol:
            return _ACCEPT
        # Full scans, mirroring PartialForest.merged_radii elementwise.
        # Skipped when a side is already proven infeasible: a singleton's
        # witness *is* its only member; the witness floor and q-vector
        # are lower bounds on the side's slack minimum.
        if (
            lu >= self.total_nodes
            and self.wmin_np.item(gu) <= btol
            and (self.qq_np.item(gu) + d + rv) * _QMARGIN <= btol
        ):
            mu = self.members_np[lu]
            pmu = P[pbase + np.minimum(mu, u) * n + np.maximum(mu, u)]
            slack_u = self.ds_np[mu + nbase] + np.maximum(
                r[mu + nbase], (pmu + d) + rv
            )
            if slack_u.min() <= btol:
                return _ACCEPT
        if (
            lv >= self.total_nodes
            and self.wmin_np.item(gv) <= btol
            and (self.qq_np.item(gv) + d + ru) * _QMARGIN <= btol
        ):
            mv = self.members_np[lv]
            pmv = P[pbase + np.minimum(mv, v) * n + np.maximum(mv, v)]
            slack_v = self.ds_np[mv + nbase] + np.maximum(
                r[mv + nbase], (pmv + d) + ru
            )
            if slack_v.min() <= btol:
                return _ACCEPT
        return _REJECT

    def _accept(self, lane: _Lane, i: int, lu: int, lv: int,
                blocked: Set[int]) -> None:
        u = lane.wu[i]
        v = lane.wv[i]
        comps = self.comps
        rec = comps.pop(lu, None)
        if rec is None:
            szu, glu, tid_u = 1, [lu], lu - lane.nbase
        else:
            szu, glu, tid_u = rec
        rec = comps.pop(lv, None)
        if rec is None:
            szv, glv, tid_v = 1, [lv], lv - lane.nbase
        else:
            szv, glv, tid_v = rec
        lane.merge_sizes.append((szu, szv))
        lane.accepted.append((lane.worig[i], u, v))
        new = next(self.labelgen)
        comp = self.comp
        for g in glu:
            comp[g] = new
        for g in glv:
            comp[g] = new
        comps[new] = (szu + szv, glu + glv, lane.n + len(lane.treelog))
        lane.treelog.append((tid_u, tid_v))
        if lu == lane.srclab or lv == lane.srclab:
            lane.srclab = new
        blocked.add(lu)
        blocked.add(lv)
        blocked.add(new)
        lane.merged += 1
        if lane.merged == lane.n - 1:
            lane.done = True
        self.merges.append((lane, u, v, lane.wd[i], lu, lv, new))

    # ------------------------------------------------------------------
    # Batched round-end application of all accepted merges
    # ------------------------------------------------------------------
    def _apply(self) -> None:
        merges = self.merges
        self.merges = []
        count = len(merges)
        members_np = self.members_np
        total = self.total_nodes
        iota = self._iota
        mus = [
            members_np.pop(rec[4])
            if rec[4] >= total
            else iota[rec[4] - rec[0].nbase:rec[4] - rec[0].nbase + 1]
            for rec in merges
        ]
        mvs = [
            members_np.pop(rec[5])
            if rec[5] >= total
            else iota[rec[5] - rec[0].nbase:rec[5] - rec[0].nbase + 1]
            for rec in merges
        ]
        meta = np.array(
            [(rec[0].index, rec[1], rec[2], rec[6]) for rec in merges],
            dtype=np.int64,
        )
        lid = meta[:, 0]
        nb = self.lane_n[lid]
        pb = self.lane_pb[lid]
        base = self.lane_nb[lid]
        ul = meta[:, 1]
        vl = meta[:, 2]
        newlabs = meta[:, 3]
        dd = np.array([rec[3] for rec in merges])
        szu = np.array([mu.shape[0] for mu in mus], dtype=np.int64)
        szv = np.array([mv.shape[0] for mv in mvs], dtype=np.int64)
        MU = np.concatenate(mus)
        MV = np.concatenate(mvs)
        arange = np.arange(count, dtype=np.int64)
        repU = np.repeat(arange, szu)
        repV = np.repeat(arange, szv)
        gMU = MU + base[repU]
        gMV = MV + base[repV]
        P = self.P_flat
        uls = ul[repU]
        vls = vl[repV]
        # P[x, u] for x in t_u / P[y, v] for y in t_v, canonical triangle.
        QU = P[np.minimum(MU, uls) * nb[repU] + pb[repU] + np.maximum(MU, uls)]
        QV = P[np.minimum(MV, vls) * nb[repV] + pb[repV] + np.maximum(MV, vls)]
        # Reference cross block: (P[x, u] + d) + P[v, y], row-major.
        A = QU + dd[repU]
        startsU = np.zeros(count, dtype=np.int64)
        np.cumsum(szu[:-1], out=startsU[1:])
        startsV = np.zeros(count, dtype=np.int64)
        np.cumsum(szv[:-1], out=startsV[1:])
        # Radii via the cross block's row/column maxima:
        # max_y (A[x] + QV[y]) == A[x] + max(QV) exactly (monotone add).
        maxQV = np.maximum.reduceat(QV, startsV)
        maxA = np.maximum.reduceat(A, startsU)
        r_u_new = np.maximum(self.r_np[gMU], A + maxQV[repU])
        r_v_new = np.maximum(self.r_np[gMV], maxA[repV] + QV)
        self.r_np[gMU] = r_u_new
        self.r_np[gMV] = r_v_new
        # Cross-block P writes — one canonical-triangle scatter per pair.
        pairs = szu * szv
        perU = szv[repU]  # cross-row length of each u-side element
        Aexp = np.repeat(A, perU)
        pairstart = np.zeros(count, dtype=np.int64)
        np.cumsum(pairs[:-1], out=pairstart[1:])
        total_pairs = int(pairs.sum())
        mergeof = np.repeat(arange, pairs)
        rel = np.arange(total_pairs, dtype=np.int64) - pairstart[mergeof]
        colabs = startsV[mergeof] + rel % szv[mergeof]
        QVexp = QV[colabs]
        MVexp = MV[colabs]
        cross = Aexp + QVexp
        MUexp = np.repeat(MU, perU)
        lo = np.minimum(MUexp, MVexp)
        hi = np.maximum(MUexp, MVexp)
        P[nb[mergeof] * lo + pb[mergeof] + hi] = cross
        # Witness floor of each merged component, with the fresh radii.
        dsU = self.ds_np[gMU]
        dsV = self.ds_np[gMV]
        slack_u = dsU + r_u_new
        slack_v = dsV + r_v_new
        minU = np.minimum.reduceat(slack_u, startsU)
        minV = np.minimum.reduceat(slack_v, startsV)
        wmin_new = np.minimum(minU, minV)
        # First node attaining each side's minimum; keep the better side.
        eqU = np.flatnonzero(slack_u == minU[repU])
        argU = MU[eqU[np.searchsorted(eqU, startsU)]]
        eqV = np.flatnonzero(slack_v == minV[repV])
        argV = MV[eqV[np.searchsorted(eqV, startsV)]]
        warg_new = np.where(minU <= minV, argU, argV)
        # q-vector maintenance: each side's nodes gain the other side as
        # candidate witnesses of min(ds + P[., x]); within-side paths
        # are untouched by the merge, so the old qq entries stand.
        minqB = np.minimum.reduceat(dsV + QV, startsV)
        minA2 = np.minimum.reduceat(dsU + A, startsU)
        self.qq_np[gMU] = np.minimum(self.qq_np[gMU], minqB[repU] + A)
        self.qq_np[gMV] = np.minimum(self.qq_np[gMV], minA2[repV] + QV)
        self.comp_np[gMU] = newlabs[repU]
        self.comp_np[gMV] = newlabs[repV]
        self.wmin_np[gMU] = wmin_new[repU]
        self.wmin_np[gMV] = wmin_new[repV]
        self.warg_np[gMU] = warg_new[repU]
        self.warg_np[gMV] = warg_new[repV]
        starts_u_list = startsU.tolist()
        starts_v_list = startsV.tolist()
        szu_list = szu.tolist()
        szv_list = szv.tolist()
        for k, rec in enumerate(merges):
            a = starts_u_list[k]
            b = a + szu_list[k]
            c = starts_v_list[k]
            e = c + szv_list[k]
            # Kept sorted so the cross-block scatters above walk P in
            # near-row-major order; every consumer is order-independent.
            merged = np.concatenate((MU[a:b], MV[c:e]))
            merged.sort()
            members_np[rec[6]] = merged

    # ------------------------------------------------------------------
    # Driver
    # ------------------------------------------------------------------
    def solve(self) -> None:
        lanes = self.lanes
        for lane in lanes:
            if not lane.done:
                self._fill(lane)
        while True:
            if self.budget is not None:
                self.budget.checkpoint()
            progress = False
            pending = False
            for lane in lanes:
                if lane.done:
                    continue
                if (
                    lane.wpos >= len(lane.worig)
                    and lane.exhausted
                    and not lane.deferred
                ):
                    continue
                pending = True
                if self._walk(lane):
                    progress = True
            if self.merges:
                self._apply()
                progress = True
            for lane in lanes:
                if lane.need_fill and not lane.done:
                    lane.need_fill = False
                    if self._fill(lane):
                        progress = True
            if not pending:
                return
            if not progress:  # pragma: no cover - defensive backstop
                raise InfeasibleError(
                    "bkrus_np made no progress — kernel invariant violated"
                )

    # ------------------------------------------------------------------
    # Trace reconstruction
    # ------------------------------------------------------------------
    def build_trace(self, lane: _Lane) -> KruskalTrace:
        """The :class:`KruskalTrace` the reference scan would have filled."""
        trace = KruskalTrace()
        # Accepts are logged in execution order, which the deferral walk
        # may permute; the reference order is ascending scan position.
        order = sorted(
            range(len(lane.accepted)), key=lambda k: lane.accepted[k][0]
        )
        if lane.done and order:
            scanned = lane.accepted[order[-1]][0] + 1
        elif lane.done:
            scanned = 0  # trivial net: the scan never ran
        else:
            scanned = lane.m
        trace.edges_scanned = scanned
        trace.accepted = [
            (lane.accepted[k][1], lane.accepted[k][2]) for k in order
        ]
        trace.merge_sizes = [lane.merge_sizes[k] for k in order]
        walk = [rec for rec in lane.rejected_walk if rec[0] < scanned]
        worig = np.array([rec[0] for rec in walk], dtype=np.int64)
        wu = np.array([rec[1] for rec in walk], dtype=np.int64)
        wv = np.array([rec[2] for rec in walk], dtype=np.int64)
        porig, pu, pv = self._genuine_pend_rejects(lane, scanned)
        rorig = np.concatenate((worig, porig))
        ru = np.concatenate((wu, pu))
        rv = np.concatenate((wv, pv))
        sortidx = np.argsort(rorig, kind="stable")
        trace.rejected = list(
            zip(ru[sortidx].tolist(), rv[sortidx].tolist())
        )
        return trace

    def _genuine_pend_rejects(
        self, lane: _Lane, scanned: int
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fill-time rejections the reference would record too.

        A fill-dropped edge is recorded iff its endpoints were still in
        different components when the scan reached it — otherwise the
        reference saw a cycle edge, which is never recorded.  Connection
        times come from an LCA replay over the merge tree.  Returns the
        surviving ``(orig, u, v)`` triples as arrays.
        """
        empty = np.empty(0, dtype=np.int64)
        if not lane.pend:
            return empty, empty, empty
        orig = np.concatenate([rec[0] for rec in lane.pend])
        us = np.concatenate([rec[1] for rec in lane.pend])
        vs = np.concatenate([rec[2] for rec in lane.pend])
        in_scan = orig < scanned
        if not in_scan.all():
            orig, us, vs = orig[in_scan], us[in_scan], vs[in_scan]
        if orig.size == 0:
            return empty, empty, empty
        times = _connection_times(lane.n, lane.treelog, us, vs)
        accept_orig = np.array(
            [rec[0] for rec in lane.accepted], dtype=np.int64
        )
        connected = np.zeros(orig.shape[0], dtype=bool)
        known = times >= 0
        if known.any():
            connected[known] = accept_orig[times[known]] < orig[known]
        keep = np.flatnonzero(~connected)
        return orig[keep], us[keep], vs[keep]


def _connection_times(
    n: int,
    treelog: Sequence[Tuple[int, int]],
    us: np.ndarray,
    vs: np.ndarray,
) -> np.ndarray:
    """Accept index at which each (u, v) pair became connected, else -1.

    ``treelog`` is the binary merge forest: leaves ``0..n-1`` are nodes,
    accept ``k`` is internal tid ``n + k`` with children ``treelog[k]``.
    The accept joining two leaves is exactly their LCA, answered with
    vectorized binary lifting.  A parent tid always exceeds its children
    (internal tid ``n + k`` is created after both children), so depths
    fall out of one descending sweep, and roots are self-loops in the
    lifting table (climbing past a root is a no-op).
    """
    total = n + len(treelog)
    parent = np.arange(total, dtype=np.int64)
    if treelog:
        tl = np.array(treelog, dtype=np.int64)
        kid = n + np.arange(len(treelog), dtype=np.int64)
        parent[tl[:, 0]] = kid
        parent[tl[:, 1]] = kid
    par_list = parent.tolist()
    depth_list = [0] * total
    for t in range(total - 1, -1, -1):
        p = par_list[t]
        if p != t:
            depth_list[t] = depth_list[p] + 1
    depth = np.array(depth_list, dtype=np.int64)
    nlevels = max(1, int(depth.max()).bit_length())
    up = [parent]
    for _ in range(1, nlevels):
        up.append(up[-1][up[-1]])
    du = depth[us]
    dv = depth[vs]
    a = np.where(du >= dv, us, vs)
    b = np.where(du >= dv, vs, us)
    diff = np.abs(du - dv)
    for k in range(nlevels):
        climb = ((diff >> k) & 1).astype(bool)
        a = np.where(climb, up[k][a], a)
    meet = a == b
    for k in range(nlevels - 1, -1, -1):
        ka = up[k][a]
        kb = up[k][b]
        step = ~meet & (ka != kb)
        a = np.where(step, ka, a)
        b = np.where(step, kb, b)
    lca = np.where(meet, a, up[0][a])
    # Pairs in different trees never climbed to a common tid.
    connected = np.where(meet, True, up[0][a] == up[0][b])
    return np.where(connected, lca - n, -1)


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------


def bkrus_np_many(
    nets: Sequence[Net],
    eps: float,
    tolerance: float = 1e-9,
    traces: Optional[Sequence[Optional[KruskalTrace]]] = None,
) -> List[RoutingTree]:
    """Construct the BKT of several nets in one batched scan.

    Semantically ``[bkrus(net, eps) for net in nets]`` — identical trees
    and identical per-net traces — but all nets advance in lockstep so
    each merge round pays numpy dispatch once for the whole batch.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    nets = list(nets)
    if traces is not None and len(traces) != len(nets):
        raise InvalidParameterError(
            f"got {len(traces)} traces for {len(nets)} nets"
        )
    bounds = [
        net.path_bound(eps) if math.isfinite(eps) else math.inf
        for net in nets
    ]
    engine = _BatchScan(nets, bounds, tolerance, active_budget())
    want_traces = traces is not None or tracing_active()
    with span("bkrus") as bkrus_span:
        engine.solve()
        if want_traces:
            for index, lane in enumerate(engine.lanes):
                built = engine.build_trace(lane)
                if traces is not None and traces[index] is not None:
                    target = traces[index]
                    target.accepted.extend(built.accepted)
                    target.rejected.extend(built.rejected)
                    target.edges_scanned += built.edges_scanned
                    target.merge_sizes.extend(built.merge_sizes)
                if bkrus_span is not None:
                    built.publish(bkrus_span)
    trees = []
    for lane in engine.lanes:
        if lane.n > 1 and not lane.done:
            raise InfeasibleError(
                "BKRUS failed to span the net — this indicates a broken "
                "feasibility policy, not a property of the input"
            )
        # Execution order may differ from scan order under the deferral
        # walk; the reference appends edges in scan (accept) order.
        trees.append(
            RoutingTree(
                lane.net,
                [
                    (u, v) if u < v else (v, u)
                    for (_, u, v) in sorted(lane.accepted)
                ],
            )
        )
    return trees


def bkrus_np(
    net: Net,
    eps: float,
    tolerance: float = 1e-9,
    trace: Optional[KruskalTrace] = None,
) -> RoutingTree:
    """Vectorized :func:`repro.algorithms.bkrus.bkrus` — identical output.

    Same signature, same tree, same trace contents and counters; only
    the evaluation strategy differs (see the module docstring).
    """
    return bkrus_np_many(
        [net], eps, tolerance,
        traces=None if trace is None else [trace],
    )[0]
