"""Minimal spanning trees over a net's complete terminal graph.

Both classical constructions are provided: Kruskal (the basis of BKRUS)
and Prim (the basis of BPRIM).  On the same net they return trees of the
same cost, though possibly different edge sets under ties.

``mst(net)`` is the unbounded anchor of the paper's comparisons — every
perf ratio in Tables 2-4 is ``cost(tree) / cost(mst)``.
"""

from __future__ import annotations

import heapq
from typing import List

import numpy as np

from repro.core.disjoint_set import DisjointSet
from repro.core.edges import sorted_edge_arrays
from repro.core.net import Net, SOURCE
from repro.core.tree import RoutingTree
from repro.runtime.budget import active_budget


def kruskal_mst(net: Net) -> RoutingTree:
    """Kruskal's algorithm on the complete terminal graph.

    Deterministic: edges are scanned in (weight, u, v) order, so equal-cost
    MSTs resolve identically run to run.

    Checkpoints the ambient :class:`~repro.runtime.Budget` (if any) per
    scanned edge, so budgeted callers (brbc's backbone MST, exact-solver
    seeding) stay cancellable inside this loop too.
    """
    n = net.num_terminals
    _, us, vs = sorted_edge_arrays(net)
    budget = active_budget()
    sets = DisjointSet(n)
    chosen: List[tuple] = []
    for u, v in zip(us.tolist(), vs.tolist()):
        if budget is not None:
            budget.checkpoint()
        if sets.union(u, v):
            chosen.append((u, v))
            if len(chosen) == n - 1:
                break
    return RoutingTree(net, chosen)


def prim_mst(net: Net, root: int = SOURCE) -> RoutingTree:
    """Prim's algorithm grown from ``root`` using the dense distance matrix.

    O(V^2) with numpy argmin per step — the right shape for complete
    geometric graphs, and fast enough for the large Table 3 instances.
    """
    n = net.num_terminals
    dist = net.dist
    in_tree = np.zeros(n, dtype=bool)
    in_tree[root] = True
    best_cost = dist[root].copy()
    best_from = np.full(n, root, dtype=int)
    best_cost[root] = np.inf
    chosen: List[tuple] = []
    for _ in range(n - 1):
        nxt = int(np.argmin(np.where(in_tree, np.inf, best_cost)))
        chosen.append((int(best_from[nxt]), nxt))
        in_tree[nxt] = True
        best_cost[nxt] = np.inf
        closer = dist[nxt] < best_cost
        closer &= ~in_tree
        best_cost[closer] = dist[nxt][closer]
        best_from[closer] = nxt
    return RoutingTree(net, chosen)


def mst(net: Net) -> RoutingTree:
    """The library's canonical MST (Kruskal, deterministic tie-breaks)."""
    return kruskal_mst(net)


def mst_cost(net: Net) -> float:
    """Cost of a minimal spanning tree of ``net``."""
    return mst(net).cost


def maximal_spanning_tree(net: Net) -> RoutingTree:
    """Maximum-weight spanning tree — the upper anchor of Figure 11's chart."""
    n = net.num_terminals
    weights, us, vs = sorted_edge_arrays(net)
    sets = DisjointSet(n)
    chosen: List[tuple] = []
    for u, v in zip(us[::-1].tolist(), vs[::-1].tolist()):
        if sets.union(u, v):
            chosen.append((u, v))
            if len(chosen) == n - 1:
                break
    del weights
    return RoutingTree(net, chosen)


def constrained_mst(
    net: Net,
    include: frozenset,
    exclude: frozenset,
) -> "RoutingTree | None":
    """Minimum spanning tree forced to contain ``include`` and avoid ``exclude``.

    The workhorse of the Gabow-style enumeration (Section 4): each search
    node is the constrained-MST problem over (include, exclude) edge sets.
    Returns None if the constraints admit no spanning tree (forced edges
    forming a cycle, or the remaining graph disconnected).
    """
    n = net.num_terminals
    budget = active_budget()
    sets = DisjointSet(n)
    chosen: List[tuple] = []
    for u, v in sorted(include):
        if budget is not None:
            budget.checkpoint()
        if not sets.union(u, v):
            return None
        chosen.append((u, v))
    if len(chosen) == n - 1:
        return RoutingTree(net, chosen)
    _, us, vs = sorted_edge_arrays(net)
    for u, v in zip(us.tolist(), vs.tolist()):
        if budget is not None:
            budget.checkpoint()
        edge = (u, v)
        if edge in include or edge in exclude:
            continue
        if sets.union(u, v):
            chosen.append(edge)
            if len(chosen) == n - 1:
                return RoutingTree(net, chosen)
    return None


def mst_edge_heap(net: Net) -> List[tuple]:
    """(weight, u, v) min-heap over all complete-graph edges."""
    weights, us, vs = sorted_edge_arrays(net)
    heap = [
        (float(w), int(u), int(v))
        for w, u, v in zip(weights, us, vs)
    ]
    heapq.heapify(heap)
    return heap
