"""BKRUS — Bounded path length Kruskal spanning trees (Section 3.1).

The algorithm is classical Kruskal plus one extra acceptance test per
edge: the merged tree must still be *completable* within the path-length
bound ``(1 + eps) * R``.  Two cases (Figure 2):

* (3-a) one endpoint component contains the source: the merge is feasible
  iff ``path(S, u) + dist(u, v) + radius(v) <= bound`` — every node of the
  attached component lands within the bound, and nodes already connected
  to the source are unaffected.
* (3-b) neither component contains the source: the merge is feasible iff
  the merged tree contains a *feasible node* ``x`` with
  ``dist(S, x) + radius_tM(x) <= bound`` — a direct source connection at
  ``x`` could still bring everyone within the bound later.

Lemma 3.1 guarantees a rejected edge never becomes feasible, so the
single sorted pass of Kruskal suffices and the tree it returns (called
BKT in the paper) always satisfies the bound.  Complexity ``O(V^3)``.

The module exposes a generic driver, :func:`bounded_kruskal`, so the
lower+upper bounded construction (Section 6) and tests can plug in their
own feasibility policies while reusing the scan/merge machinery.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, List, Optional, Tuple

from repro.core.exceptions import InfeasibleError, InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.core.partial_forest import PartialForest
from repro.core.edges import sorted_edge_arrays
from repro.core.tree import RoutingTree
from repro.observability import record, span, tracing_active
from repro.observability.trace import Span

FeasibilityTest = Callable[[PartialForest, int, int], bool]
"""Signature of a merge-feasibility policy: (forest, u, v) -> accept?"""


@dataclass
class KruskalTrace:
    """Optional construction trace for diagnostics and tests.

    ``accepted`` lists merges in order; ``rejected`` lists edges that
    failed the bound test (cycle edges are not recorded — condition (2)
    rejections are uninteresting and numerous).
    """

    accepted: List[Tuple[int, int]] = field(default_factory=list)
    rejected: List[Tuple[int, int]] = field(default_factory=list)
    edges_scanned: int = 0
    merge_sizes: List[Tuple[int, int]] = field(default_factory=list)
    """Sizes of the two components joined by each accepted merge,
    recorded *before* the merge, in merge order."""

    def publish(self, target: Span) -> None:
        """Emit this trace's totals as counters on an open span."""
        target.incr("bkrus.edges_scanned", self.edges_scanned)
        target.incr("bkrus.merges", len(self.accepted))
        target.incr("bkrus.bound_rejections", len(self.rejected))
        if self.merge_sizes:
            target.incr(
                "bkrus.largest_merge", max(a + b for a, b in self.merge_sizes)
            )
            target.record(
                "bkrus.merge_component_sizes",
                [list(pair) for pair in self.merge_sizes],
            )


def upper_bound_test(
    net: Net,
    bound: float,
    tolerance: float = 1e-9,
) -> FeasibilityTest:
    """The paper's conditions (3-a)/(3-b) for a given absolute ``bound``."""
    dist = net.dist

    def feasible(forest: PartialForest, u: int, v: int) -> bool:
        d = float(dist[u, v])
        source_in_u = forest.component_contains_source(u)
        source_in_v = forest.component_contains_source(v)
        if source_in_u:
            return forest.path(SOURCE, u) + d + forest.radius(v) <= bound + tolerance
        if source_in_v:
            return forest.path(SOURCE, v) + d + forest.radius(u) <= bound + tolerance
        nodes, radii = forest.merged_radii(u, v)
        slack = dist[SOURCE, nodes] + radii
        return bool(slack.min() <= bound + tolerance)

    return feasible


def bounded_kruskal(
    net: Net,
    feasible: FeasibilityTest,
    edge_stream: Optional[Iterable[Tuple[int, int]]] = None,
    trace: Optional[KruskalTrace] = None,
) -> PartialForest:
    """Kruskal scan with a pluggable per-merge feasibility policy.

    Scans ``edge_stream`` (default: all complete-graph edges in
    nondecreasing weight order), merging each edge that joins two
    components *and* passes ``feasible``.  Returns the final forest; the
    caller decides whether a non-spanning forest is an error.
    """
    forest = PartialForest(net)
    n = net.num_terminals
    if edge_stream is None:
        _, us, vs = sorted_edge_arrays(net)
        edge_stream = zip(us.tolist(), vs.tolist())
    merged = 0
    for u, v in edge_stream:
        if trace is not None:
            trace.edges_scanned += 1
        if forest.connected(u, v):
            continue
        if feasible(forest, u, v):
            if trace is not None:
                trace.merge_sizes.append(
                    (
                        forest.sets.component_size(u),
                        forest.sets.component_size(v),
                    )
                )
            forest.merge(u, v)
            merged += 1
            if trace is not None:
                trace.accepted.append((u, v))
            if merged == n - 1:
                break
        elif trace is not None:
            trace.rejected.append((u, v))
    return forest


def bkrus(
    net: Net,
    eps: float,
    tolerance: float = 1e-9,
    trace: Optional[KruskalTrace] = None,
) -> RoutingTree:
    """Construct the BKT: a spanning tree with radius <= ``(1 + eps) * R``.

    Parameters
    ----------
    net:
        The net to route.
    eps:
        Non-negative slack parameter; ``math.inf`` reduces BKRUS to plain
        Kruskal MST, ``0.0`` forces SPT-like radii.
    tolerance:
        Absolute slack on bound comparisons (floating-point guard).
    trace:
        Optional :class:`KruskalTrace` to fill during construction.

    Returns
    -------
    RoutingTree
        A spanning tree that always satisfies the bound (guaranteed by the
        feasible-node invariant: every non-source component keeps a node
        that can legally reach the source directly).
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    bound = net.path_bound(eps) if math.isfinite(eps) else math.inf
    test = upper_bound_test(net, bound, tolerance)
    # Self-instrumentation: under an active trace session a KruskalTrace
    # is always filled (the caller's, or a throwaway) and its totals are
    # published as counters on the ``bkrus`` span.  With tracing off the
    # only cost is this None check — the scan itself is unchanged.
    local_trace = trace
    if local_trace is None and tracing_active():
        local_trace = KruskalTrace()
    with span("bkrus") as bkrus_span:
        forest = bounded_kruskal(net, test, trace=local_trace)
        if bkrus_span is not None and local_trace is not None:
            local_trace.publish(bkrus_span)
    if forest.num_components != 1:
        raise InfeasibleError(
            "BKRUS failed to span the net — this indicates a broken "
            "feasibility policy, not a property of the input"
        )
    tree = RoutingTree(net, forest.edges)
    return tree


def bkt_cost(net: Net, eps: float) -> float:
    """Cost of the BKRUS tree for ``(net, eps)``."""
    return bkrus(net, eps).cost


def is_rejection_permanent(
    net: Net,
    eps: float,
    tolerance: float = 1e-9,
) -> bool:
    """Empirical check of Lemma 3.1 on one net.

    Re-runs the BKRUS scan and, after *every* accepted merge, replays all
    previously bound-rejected edges against the new forest state: each
    must still be infeasible (now a cycle edge, or still violating the
    bound).  Returns True when the lemma holds; used by property tests.
    """
    bound = net.path_bound(eps) if math.isfinite(eps) else math.inf
    test = upper_bound_test(net, bound, tolerance)
    forest = PartialForest(net)
    n = net.num_terminals
    _, us, vs = sorted_edge_arrays(net)
    rejected: List[Tuple[int, int]] = []
    merged = 0
    for u, v in zip(us.tolist(), vs.tolist()):
        if forest.connected(u, v):
            continue
        if test(forest, u, v):
            forest.merge(u, v)
            merged += 1
            for ru, rv in rejected:
                if forest.connected(ru, rv):
                    continue
                if test(forest, ru, rv):
                    return False  # a rejected edge became feasible again
            if merged == n - 1:
                break
        else:
            rejected.append((u, v))
    return forest.num_components == 1
