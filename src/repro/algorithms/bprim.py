"""BPRIM — the Bounded Prim baseline of Cong, Kahng, Robins et al. (1992).

BPRIM grows a single tree from the source, always keeping every connected
sink within the path-length bound ``(1 + eps) * R``.  At each step it
considers pairs ``(u, v)`` with ``u`` in the tree and ``v`` outside such
that ``path(S, u) + dist(u, v) <= bound`` (the pair ``(S, v)`` is always
legal because ``dist(S, v) <= R <= bound``), and adds the pair preferred
by a *selection scheme*.  The paper we reproduce (Section 2, Figure 1)
highlights BPRIM's pathology: sinks far from the partially grown tree can
end up connectable only through the source, inflating cost — its
worst-case performance ratio is unbounded.

Three selection schemes from the BPRIM family are implemented:

* ``"cheapest"``  — minimise ``dist(u, v)`` (the canonical variant used
  in the comparisons; exhibits the Figure 1 behaviour).
* ``"shortest_path"`` — minimise ``path(S, u) + dist(u, v)``.
* ``"balanced"`` — minimise ``dist(u, v) + path(S, u) / 2``.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net, SOURCE
from repro.core.tree import RoutingTree

SelectionKey = Callable[[float, float], float]
"""Maps (path(S, u), dist(u, v)) to the scheme's selection score."""

_SCHEMES: Dict[str, SelectionKey] = {
    "cheapest": lambda path_u, d: d,
    "shortest_path": lambda path_u, d: path_u + d,
    "balanced": lambda path_u, d: d + 0.5 * path_u,
}


def selection_schemes() -> List[str]:
    """Names of the available BPRIM selection schemes."""
    return sorted(_SCHEMES)


def bprim(
    net: Net,
    eps: float,
    scheme: str = "cheapest",
    tolerance: float = 1e-9,
) -> RoutingTree:
    """Grow a bounded-path-length tree with the BPRIM greedy.

    Always succeeds for ``eps >= 0`` (direct source edges remain legal),
    and the returned tree satisfies the bound by construction.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    if scheme not in _SCHEMES:
        raise InvalidParameterError(
            f"unknown BPRIM scheme {scheme!r}; choose from {selection_schemes()}"
        )
    key = _SCHEMES[scheme]
    bound = net.path_bound(eps) if math.isfinite(eps) else math.inf

    n = net.num_terminals
    dist = net.dist
    in_tree = [False] * n
    in_tree[SOURCE] = True
    path_len = [0.0] * n
    edges: List[Tuple[int, int]] = []

    for _ in range(n - 1):
        best: Tuple[float, float, int, int] = (math.inf, math.inf, -1, -1)
        for u in range(n):
            if not in_tree[u]:
                continue
            for v in range(n):
                if in_tree[v]:
                    continue
                d = float(dist[u, v])
                if path_len[u] + d > bound + tolerance:
                    continue
                score = key(path_len[u], d)
                candidate = (score, d, u, v)
                if candidate < best:
                    best = candidate
        _, d, u, v = best
        if u < 0:
            raise InvalidParameterError(
                "BPRIM found no feasible attachment — bound below R?"
            )
        in_tree[v] = True
        path_len[v] = path_len[u] + d
        edges.append((u, v))
    return RoutingTree(net, edges)


def bprim_vectorized(
    net: Net,
    eps: float,
    scheme: str = "cheapest",
    tolerance: float = 1e-9,
) -> RoutingTree:
    """Numpy formulation of :func:`bprim` for the larger benchmarks.

    Produces a tree of the same cost profile as the reference loop (it
    may differ on exact ties, which are resolved per-node rather than
    globally); roughly ``O(V^2)`` numpy work overall instead of
    ``O(V^3)`` Python-level comparisons.  Exactness of the feasibility
    logic is shared with :func:`bprim` and cross-checked in tests.
    """
    if eps < 0 or math.isnan(eps):
        raise InvalidParameterError(f"eps must be >= 0, got {eps}")
    if scheme not in _SCHEMES:
        raise InvalidParameterError(
            f"unknown BPRIM scheme {scheme!r}; choose from {selection_schemes()}"
        )
    bound = net.path_bound(eps) if math.isfinite(eps) else math.inf

    n = net.num_terminals
    dist = net.dist
    in_tree = np.zeros(n, dtype=bool)
    in_tree[SOURCE] = True
    path_len = np.zeros(n)
    # best_score[v], best_from[v]: best feasible attachment of outside node v
    best_score = np.full(n, np.inf)
    best_dist = np.full(n, np.inf)
    best_from = np.full(n, -1, dtype=int)
    edges: List[Tuple[int, int]] = []

    def relax(u: int) -> None:
        d = dist[u]
        feasible = (path_len[u] + d <= bound + tolerance) & ~in_tree
        score = _scheme_scores(scheme, path_len[u], d)
        better = feasible & (
            (score < best_score)
            | ((score == best_score) & (d < best_dist))
            | ((score == best_score) & (d == best_dist) & (u < best_from))
        )
        best_score[better] = score[better]
        best_dist[better] = d[better]
        best_from[better] = u

    relax(SOURCE)
    for _ in range(n - 1):
        masked = np.where(in_tree, np.inf, best_score)
        v = int(np.argmin(masked))
        if not np.isfinite(masked[v]):
            raise InvalidParameterError(
                "BPRIM found no feasible attachment — bound below R?"
            )
        u = int(best_from[v])
        in_tree[v] = True
        path_len[v] = path_len[u] + float(dist[u, v])
        edges.append((u, v))
        relax(v)
    return RoutingTree(net, edges)


def _scheme_scores(scheme: str, path_u: float, d: np.ndarray) -> np.ndarray:
    if scheme == "cheapest":
        return d
    if scheme == "shortest_path":
        return path_u + d
    return d + 0.5 * path_u
