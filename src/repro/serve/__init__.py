"""Routing-as-a-service: the long-running ``repro-serve`` daemon.

Three modules:

* :mod:`repro.serve.protocol` — request validation and JSON payload
  shapes (:class:`ServeRequest`, :class:`ProtocolError`);
* :mod:`repro.serve.worker` — the picklable pool-side solver
  (:func:`execute_request`);
* :mod:`repro.serve.daemon` — the asyncio front end, admission control,
  memoization tier and lifecycle (:class:`ReproServer`,
  :class:`ServerThread`, :func:`serve_forever`).

Start one with ``repro-serve`` or ``repro-cli serve``; the protocol and
operational guide live in ``docs/serving.md``.
"""

from repro.serve.daemon import (
    ReproServer,
    ServeConfig,
    ServerThread,
    serve_forever,
)
from repro.serve.protocol import (
    ProtocolError,
    ServeRequest,
    parse_solve_request,
)
from repro.serve.worker import execute_request

__all__ = [
    "ProtocolError",
    "ReproServer",
    "ServeConfig",
    "ServeRequest",
    "ServerThread",
    "execute_request",
    "parse_solve_request",
    "serve_forever",
]
