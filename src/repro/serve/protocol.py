"""Wire protocol of the ``repro-serve`` daemon: requests and payloads.

One request = one routing problem.  The JSON body of ``POST /solve``::

    {
      "points": [[0, 0], [10, 4], [3, 7]],   # row 0 is the source
      "eps": 0.25,                            # or "inf"
      "algorithm": "bkrus",
      "chain": ["bmst_g", "bkh2", "bkrus"],  # optional explicit ladder
      "deadline_seconds": 0.5,               # optional anytime deadline
      "max_nodes": 100000,                   # optional checkpoint cap
      "metric": "l1",                        # "l1" (default) or "l2"
      "name": "net_7"                        # optional label
    }

Validation happens *here*, in the daemon process, so malformed input is
a structured 4xx answer and never a worker exception:
:func:`parse_solve_request` raises :class:`ProtocolError` carrying the
HTTP status and a machine-readable ``code``.

A validated :class:`ServeRequest` is a frozen, picklable dataclass —
the unit shipped to pool workers.  Admission control lives in
:meth:`ServeRequest.policy`: a request carrying a deadline (or an
explicit chain, or a node cap) is turned into a
:class:`~repro.runtime.solve.FallbackPolicy`, so every admitted request
comes back with an anytime answer — the final ladder entry runs without
a deadline (see :func:`repro.runtime.solve.solve`) and the response
serializes the :class:`~repro.runtime.solve.PartialResult` honesty
metadata (``produced_by``, ``exhausted``, per-attempt outcomes).

Requests with no runtime limits are deterministic and therefore
cacheable: :meth:`ServeRequest.to_spec` builds the batch-engine
:class:`~repro.analysis.batch.JobSpec` whose content address keys the
result-store memoization tier.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.core.exceptions import InvalidNetError, ReproError
from repro.core.geometry import Metric
from repro.core.net import Net

__all__ = [
    "ProtocolError",
    "ServeRequest",
    "parse_solve_request",
    "encode_eps",
    "tree_payload",
    "report_payload",
]

#: Hard cap on terminals per request — a service boundary, not an
#: algorithmic one (quadratic distance matrices make huge nets a denial
#: of service long before they are interesting).
MAX_POINTS = 4096

_ALLOWED_KEYS = frozenset(
    {
        "points",
        "eps",
        "algorithm",
        "chain",
        "deadline_seconds",
        "max_nodes",
        "metric",
        "name",
    }
)


class ProtocolError(ReproError):
    """A request the daemon refuses: carries HTTP status + stable code."""

    def __init__(
        self, message: str, status: int = 400, code: str = "bad_request"
    ) -> None:
        super().__init__(message)
        self.status = status
        self.code = code


@dataclass(frozen=True)
class ServeRequest:
    """One validated solve request, ready to cross the worker boundary."""

    points: Tuple[Tuple[float, float], ...]
    eps: float
    algorithm: str
    chain: Optional[Tuple[str, ...]] = None
    deadline_seconds: Optional[float] = None
    max_nodes: Optional[int] = None
    metric: str = "l1"
    name: Optional[str] = None

    def build_net(self) -> Net:
        return Net.from_points(
            list(self.points), metric=self.metric, name=self.name
        )

    def policy(self):
        """The request's ladder, or ``None`` for a plain deterministic run.

        This is the admission-control contract: any runtime limit
        (deadline, node cap, explicit chain) routes the request through
        :func:`repro.runtime.solve.solve`, whose final ladder entry
        ignores the deadline — an admitted request always produces a
        tree, degraded rather than absent.
        """
        from repro.runtime.solve import DEFAULT_CHAINS, FallbackPolicy

        if (
            self.chain is None
            and self.deadline_seconds is None
            and self.max_nodes is None
        ):
            return None
        chain = self.chain or DEFAULT_CHAINS.get(
            self.algorithm, (self.algorithm,)
        )
        return FallbackPolicy(
            chain=tuple(chain),
            deadline_seconds=self.deadline_seconds,
            max_nodes=self.max_nodes,
        )

    def to_spec(self, net: Optional[Net] = None):
        """The equivalent batch :class:`~repro.analysis.batch.JobSpec`.

        Plain requests (no policy) produce a cacheable spec — the key
        of the daemon's result-store memoization tier.
        """
        from repro.analysis.batch import JobSpec

        return JobSpec(
            algorithm=self.algorithm,
            net=net if net is not None else self.build_net(),
            eps=self.eps,
            policy=self.policy(),
        )

    @property
    def cacheable(self) -> bool:
        """Deterministic (store-eligible): carries no runtime limits."""
        return (
            self.chain is None
            and self.deadline_seconds is None
            and self.max_nodes is None
        )


def _require(condition: bool, message: str, code: str = "bad_request") -> None:
    if not condition:
        raise ProtocolError(message, status=400, code=code)


def _parse_eps(value: Any) -> float:
    if isinstance(value, str):
        if value.lower() in ("inf", "infinity"):
            return math.inf
        raise ProtocolError(
            f"eps string must be 'inf', got {value!r}", code="invalid_eps"
        )
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        "eps must be a number or 'inf'",
        code="invalid_eps",
    )
    eps = float(value)
    if math.isnan(eps) or eps < 0:
        raise ProtocolError(
            f"eps must be >= 0, got {value!r}", code="invalid_eps"
        )
    return eps


def _parse_points(value: Any) -> Tuple[Tuple[float, float], ...]:
    _require(
        isinstance(value, list) and len(value) >= 2,
        "points must be a list of at least 2 [x, y] pairs "
        "(row 0 is the source)",
        code="invalid_points",
    )
    _require(
        len(value) <= MAX_POINTS,
        f"too many points (max {MAX_POINTS})",
        code="too_many_points",
    )
    points: List[Tuple[float, float]] = []
    for i, pair in enumerate(value):
        ok = (
            isinstance(pair, (list, tuple))
            and len(pair) == 2
            and all(
                isinstance(c, (int, float)) and not isinstance(c, bool)
                for c in pair
            )
            and all(math.isfinite(float(c)) for c in pair)
        )
        _require(
            ok,
            f"points[{i}] must be a pair of finite numbers",
            code="invalid_points",
        )
        points.append((float(pair[0]), float(pair[1])))
    return tuple(points)


def parse_solve_request(payload: Any) -> ServeRequest:
    """Validate a decoded ``POST /solve`` body into a :class:`ServeRequest`.

    Raises :class:`ProtocolError` (status 400) with a stable ``code``
    on any malformation — the daemon maps it to structured JSON, so bad
    input never reaches a worker process.
    """
    from repro.analysis.runners import ALGORITHMS, algorithm_names

    _require(isinstance(payload, dict), "request body must be a JSON object")
    unknown = sorted(set(payload) - _ALLOWED_KEYS)
    _require(
        not unknown,
        f"unknown request field(s): {', '.join(unknown)}",
        code="unknown_field",
    )
    for key in ("points", "eps", "algorithm"):
        _require(
            key in payload,
            f"missing required field {key!r}",
            code="missing_field",
        )

    points = _parse_points(payload["points"])
    eps = _parse_eps(payload["eps"])

    algorithm = payload["algorithm"]
    _require(
        isinstance(algorithm, str) and algorithm in ALGORITHMS,
        f"unknown algorithm {algorithm!r}; choose from {algorithm_names()}",
        code="unknown_algorithm",
    )

    chain: Optional[Tuple[str, ...]] = None
    if payload.get("chain") is not None:
        raw_chain = payload["chain"]
        _require(
            isinstance(raw_chain, list) and raw_chain,
            "chain must be a non-empty list of algorithm names",
            code="invalid_chain",
        )
        for entry in raw_chain:
            _require(
                isinstance(entry, str) and entry in ALGORITHMS,
                f"unknown chain entry {entry!r}",
                code="invalid_chain",
            )
        _require(
            raw_chain[0] == algorithm,
            f"chain must start with the requested algorithm "
            f"{algorithm!r}, got {raw_chain[0]!r}",
            code="invalid_chain",
        )
        chain = tuple(raw_chain)

    deadline: Optional[float] = None
    if payload.get("deadline_seconds") is not None:
        raw = payload["deadline_seconds"]
        _require(
            isinstance(raw, (int, float))
            and not isinstance(raw, bool)
            and math.isfinite(float(raw))
            and float(raw) >= 0,
            "deadline_seconds must be a finite number >= 0",
            code="invalid_deadline",
        )
        deadline = float(raw)

    max_nodes: Optional[int] = None
    if payload.get("max_nodes") is not None:
        raw = payload["max_nodes"]
        _require(
            isinstance(raw, int) and not isinstance(raw, bool) and raw >= 0,
            "max_nodes must be an integer >= 0",
            code="invalid_max_nodes",
        )
        max_nodes = raw

    metric = payload.get("metric", "l1")
    try:
        metric_value = Metric.parse(metric).value
    except Exception:  # lint: allow-broad-except(any unparseable metric is the same client error)
        raise ProtocolError(
            f"metric must be 'l1' or 'l2', got {metric!r}",
            code="invalid_metric",
        ) from None

    name = payload.get("name")
    _require(
        name is None or isinstance(name, str),
        "name must be a string",
        code="invalid_name",
    )

    request = ServeRequest(
        points=points,
        eps=eps,
        algorithm=algorithm,
        chain=chain,
        deadline_seconds=deadline,
        max_nodes=max_nodes,
        metric=metric_value,
        name=name,
    )
    try:
        request.build_net()
    except InvalidNetError as exc:
        raise ProtocolError(str(exc), code="invalid_net") from exc
    return request


def encode_eps(eps: float) -> Any:
    """JSON-safe eps (strict encoders reject the inf/nan literals)."""
    if math.isinf(eps):
        return "inf" if eps > 0 else "-inf"
    if math.isnan(eps):
        return "nan"
    return float(eps)


def tree_payload(tree: Any) -> Dict[str, Any]:
    """The JSON form of a routing or Steiner tree.

    Edges are canonical sorted index pairs — terminal indices for
    spanning trees, grid-node ids for Steiner trees — which makes the
    payload directly comparable against an in-process ``solve()`` call
    on the same request (the differential tests rely on this).
    """
    from repro.analysis.metrics import tree_longest_path
    from repro.steiner.bkst import SteinerTree

    if isinstance(tree, SteinerTree):
        kind = "steiner"
        edges = sorted((int(u), int(v)) for u, v in tree.edges)
    else:
        kind = "spanning"
        edges = sorted(
            (int(min(u, v)), int(max(u, v))) for u, v in tree.edge_set()
        )
    return {
        "kind": kind,
        "edges": [[u, v] for u, v in edges],
        "cost": float(tree.cost),
        "longest_path": float(tree_longest_path(tree)),
    }


def report_payload(report: Any) -> Dict[str, Any]:
    """The JSON form of a :class:`~repro.analysis.metrics.TreeReport`."""
    return {
        "algorithm": report.algorithm,
        "net": report.net_name,
        "eps": encode_eps(report.eps),
        "cost": report.cost,
        "longest_path": report.longest_path,
        "shortest_path": report.shortest_path,
        "perf_ratio": report.perf_ratio,
        "path_ratio": report.path_ratio,
        "cpu_seconds": (
            report.cpu_seconds if math.isfinite(report.cpu_seconds) else None
        ),
    }
