"""The ``repro-serve`` daemon: routing-as-a-service over asyncio.

Architecture — three tiers, one process boundary::

    client --HTTP/JSON--> asyncio front end --pickle--> process pool
                               |
                         ResultStore (memoization tier, disk)

* The front end is ``asyncio.start_server`` plus a deliberately minimal
  HTTP/1.1 parser (request line, headers, ``Content-Length`` body;
  keep-alive; no chunked encoding, no TLS) — stdlib only, because this
  repo adds no dependencies.
* Validated requests (see :mod:`repro.serve.protocol`) are solved on a
  persistent ``ProcessPoolExecutor`` by
  :func:`repro.serve.worker.execute_request`; the event loop never runs
  a solver, so health checks and admission stay responsive under load.
* Cacheable requests consult the content-addressed
  :class:`~repro.persistence.ResultStore` *before* touching the pool:
  a hot net is answered from disk with zero solver recomputation
  (``serve.cache_hits``), and cold results are written back by the
  worker.

Admission control: a draining daemon or a full queue answers 503
(``serve.rejections``); an admitted request with a deadline runs the
fallback ladder, whose final entry ignores the deadline — so admission
is a promise of an *anytime* answer, not of the preferred algorithm
(``serve.deadline_misses`` counts the degraded ones).

Every request gets a trace ID (``<pid>-<sequence>``, no randomness),
returned in the body and the ``X-Repro-Trace-Id`` header, and stamped
on the per-request JSONL log entry along with the worker's trace
counters and the daemon's cumulative ``serve.*`` counters.

Graceful shutdown (SIGTERM/SIGINT or :meth:`ReproServer.drain`): stop
accepting connections, reject new solves with 503, wait for in-flight
requests, shut the pool down, flush the log — then exit 0.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import signal
import threading
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Tuple

from repro.core.exceptions import (
    InfeasibleError,
    InvalidNetError,
    InvalidParameterError,
    ReproError,
)
from repro.serve.protocol import (
    ProtocolError,
    ServeRequest,
    parse_solve_request,
)
from repro.serve.worker import execute_request

__all__ = [
    "ServeConfig",
    "ReproServer",
    "ServerThread",
    "serve_forever",
    "main",
]

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8787

#: Env knobs (declared in :mod:`repro.core.knobs`): defaults for the
#: matching :class:`ServeConfig` fields, overridable per flag.
WORKERS_ENV_VAR = "REPRO_SERVE_WORKERS"
MAX_QUEUE_ENV_VAR = "REPRO_SERVE_MAX_QUEUE"
LOG_ENV_VAR = "REPRO_SERVE_LOG"

_MAX_BODY_BYTES = 8 * 1024 * 1024
_MAX_HEADER_LINES = 100
_MAX_LINE_BYTES = 16 * 1024

#: Client errors a worker can only discover by solving (or failing to):
#: mapped to 422 rather than a daemon fault.
_CLIENT_ERROR_TYPES = frozenset(
    {
        InfeasibleError.__name__,
        InvalidParameterError.__name__,
        InvalidNetError.__name__,
    }
)


def _bump(counters: Dict[str, float], name: str, value: float = 1) -> None:
    counters[name] = counters.get(name, 0) + value


@dataclass(frozen=True)
class ServeConfig:
    """Daemon configuration; :meth:`from_env` layers in the env knobs."""

    host: str = DEFAULT_HOST
    port: int = DEFAULT_PORT
    workers: int = 2
    store: Optional[str] = None
    max_queue: int = 64
    log_path: Optional[str] = None
    trace: bool = True
    idle_timeout: float = 30.0

    @classmethod
    def from_env(cls, **overrides: Any) -> "ServeConfig":
        """Defaults from ``REPRO_SERVE_*`` knobs, then ``overrides``.

        Override values of ``None`` mean "not given on the command
        line" and are dropped, so the env (or dataclass) default wins.
        """
        env_defaults: Dict[str, Any] = {}
        workers = os.environ.get(WORKERS_ENV_VAR, "").strip()
        if workers:
            env_defaults["workers"] = int(workers)
        max_queue = os.environ.get(MAX_QUEUE_ENV_VAR, "").strip()
        if max_queue:
            env_defaults["max_queue"] = int(max_queue)
        log_path = os.environ.get(LOG_ENV_VAR, "").strip()
        if log_path:
            env_defaults["log_path"] = log_path
        env_defaults.update(
            {k: v for k, v in overrides.items() if v is not None}
        )
        return replace(cls(), **env_defaults)


class ReproServer:
    """One daemon instance: front end, admission, pool, store, log."""

    def __init__(self, config: ServeConfig) -> None:
        if config.workers < 1:
            raise InvalidParameterError("serve needs at least 1 worker")
        if config.max_queue < 1:
            raise InvalidParameterError("max_queue must be >= 1")
        self.config = config
        self.counters: Dict[str, float] = {}
        self.port: Optional[int] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool = None
        self._store = None
        self._log_handle = None
        self._draining = False
        self._in_flight = 0
        self._request_seq = 0
        self._connection_seq = 0
        self._idle = asyncio.Event()
        self._idle.set()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        from repro.analysis.batch import _make_pool
        from repro.persistence.store import ResultStore

        if self.config.store:
            self._store = ResultStore(self.config.store)
        if self.config.log_path:
            self._log_handle = open(
                self.config.log_path, "a", encoding="utf-8"
            )
        self._pool = _make_pool(self.config.workers)
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def drain(self) -> None:
        """Graceful shutdown: reject new work, finish in-flight, stop."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._idle.wait()
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        if self._log_handle is not None:
            self._log_handle.close()
            self._log_handle = None

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._connection_seq += 1
        connection_id = self._connection_seq
        connection_requests = 0
        _bump(self.counters, "serve.connections_open")
        try:
            while True:
                try:
                    parsed = await self._read_request(reader)
                except ProtocolError as exc:
                    writer.write(_error_response(exc)[0])
                    await writer.drain()
                    break
                if parsed is None:
                    break
                connection_requests += 1
                if connection_requests > 1:
                    # Request 2..N rode an existing keep-alive connection
                    # instead of paying a fresh TCP handshake.
                    _bump(self.counters, "serve.connections_reused")
                method, path, headers, body = parsed
                payload, status, extra_headers = await self._dispatch(
                    method,
                    path,
                    body,
                    connection=(connection_id, connection_requests),
                )
                keep_alive = (
                    headers.get("connection", "").lower() != "close"
                    and not self._draining
                )
                writer.write(
                    _http_response(
                        status, payload, keep_alive, extra_headers
                    )
                )
                await writer.drain()
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            asyncio.TimeoutError,
            ConnectionError,
        ):
            pass  # client went away; nothing to answer
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on a clean EOF."""
        line = await asyncio.wait_for(
            reader.readline(), timeout=self.config.idle_timeout
        )
        if not line:
            return None
        if len(line) > _MAX_LINE_BYTES:
            raise ProtocolError("request line too long", status=431)
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise ProtocolError("malformed request line")
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        for _ in range(_MAX_HEADER_LINES):
            raw = await asyncio.wait_for(
                reader.readline(), timeout=self.config.idle_timeout
            )
            if raw in (b"\r\n", b"\n", b""):
                break
            if len(raw) > _MAX_LINE_BYTES:
                raise ProtocolError("header line too long", status=431)
            text = raw.decode("latin-1")
            if ":" not in text:
                raise ProtocolError("malformed header line")
            key, _, value = text.partition(":")
            headers[key.strip().lower()] = value.strip()
        else:
            raise ProtocolError("too many headers", status=431)
        body = b""
        if "content-length" in headers:
            try:
                length = int(headers["content-length"])
            except ValueError:
                raise ProtocolError("malformed Content-Length") from None
            if length < 0:
                raise ProtocolError("malformed Content-Length")
            if length > _MAX_BODY_BYTES:
                raise ProtocolError(
                    f"request body too large (max {_MAX_BODY_BYTES} bytes)",
                    status=413,
                    code="body_too_large",
                )
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=self.config.idle_timeout
            )
        return method, target, headers, body

    async def _dispatch(
        self,
        method: str,
        path: str,
        body: bytes,
        connection: Tuple[int, int] = (0, 0),
    ) -> Tuple[Dict[str, Any], int, Dict[str, str]]:
        path = path.split("?", 1)[0]
        if path == "/solve":
            if method != "POST":
                return _error_payload(
                    "use POST for /solve", 405, "method_not_allowed"
                )
            return await self._handle_solve(body, connection)
        if path == "/healthz":
            if method != "GET":
                return _error_payload(
                    "use GET for /healthz", 405, "method_not_allowed"
                )
            status = "draining" if self._draining else "ok"
            return (
                {"status": status, "in_flight": self._in_flight},
                200,
                {},
            )
        if path == "/stats":
            if method != "GET":
                return _error_payload(
                    "use GET for /stats", 405, "method_not_allowed"
                )
            return (
                {
                    "counters": dict(self.counters),
                    "in_flight": self._in_flight,
                    "draining": self._draining,
                    "workers": self.config.workers,
                    "store_armed": self._store is not None,
                },
                200,
                {},
            )
        return _error_payload(f"no such endpoint: {path}", 404, "not_found")

    # ------------------------------------------------------------------
    # /solve
    # ------------------------------------------------------------------
    async def _handle_solve(
        self, body: bytes, connection: Tuple[int, int] = (0, 0)
    ) -> Tuple[Dict[str, Any], int, Dict[str, str]]:
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            return _error_payload(
                f"request body is not valid JSON: {exc}", 400, "invalid_json"
            )
        try:
            request = parse_solve_request(payload)
        except ProtocolError as exc:
            return _error_payload(str(exc), exc.status, exc.code)

        if self._draining:
            _bump(self.counters, "serve.rejections")
            return _error_payload(
                "daemon is draining", 503, "draining"
            )
        if self._in_flight >= self.config.max_queue:
            _bump(self.counters, "serve.rejections")
            return _error_payload(
                f"queue full ({self.config.max_queue} in flight)",
                503,
                "overloaded",
            )

        self._request_seq += 1
        trace_id = f"{os.getpid():x}-{self._request_seq:06d}"
        _bump(self.counters, "serve.requests")
        self._in_flight += 1
        self._idle.clear()
        # High-water gauge, kept as a monotone counter so it merges and
        # exports like every other counter.
        peak = self.counters.get("serve.queue_depth", 0)
        if self._in_flight > peak:
            _bump(self.counters, "serve.queue_depth", self._in_flight - peak)
        try:
            result, status = await self._solve_admitted(request)
        finally:
            self._in_flight -= 1
            if self._in_flight == 0:
                self._idle.set()
        result["trace_id"] = trace_id
        self._log_request(trace_id, request, result, status, connection)
        return result, status, {"X-Repro-Trace-Id": trace_id}

    async def _solve_admitted(
        self, request: ServeRequest
    ) -> Tuple[Dict[str, Any], int]:
        loop = asyncio.get_running_loop()
        if self._store is not None and request.cacheable:
            spec = request.to_spec()
            cached = await loop.run_in_executor(None, self._store.load, spec)
            if cached is not None:
                _bump(self.counters, "serve.cache_hits")
                return _cached_result(request, cached), 200
        try:
            result = await loop.run_in_executor(
                self._pool,
                execute_request,
                request,
                self.config.store,
                self.config.trace,
            )
        # lint: allow-broad-except(a broken pool or lost worker must map to one 5xx answer and a pool rebuild, never kill the daemon)
        except Exception as exc:  # noqa: BLE001
            self._rebuild_pool()
            payload, status, _ = _error_payload(
                f"worker pool failed: {exc}", 500, "worker_crashed"
            )
            return payload, status
        if not result.get("ok", False):
            status = (
                422
                if result.get("error_type") in _CLIENT_ERROR_TYPES
                else 500
            )
            result["error_code"] = (
                "unsolvable" if status == 422 else "worker_error"
            )
            return result, status
        if (
            request.deadline_seconds is not None
            and result.get("exhausted", False)
        ):
            _bump(self.counters, "serve.deadline_misses")
        return result, 200

    def _rebuild_pool(self) -> None:
        from repro.analysis.batch import _make_pool

        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
        self._pool = _make_pool(self.config.workers)

    # ------------------------------------------------------------------
    # Observability
    # ------------------------------------------------------------------
    def _log_request(
        self,
        trace_id: str,
        request: ServeRequest,
        result: Dict[str, Any],
        status: int,
        connection: Tuple[int, int] = (0, 0),
    ) -> None:
        if self._log_handle is None:
            return
        connection_id, connection_request = connection
        entry = {
            "trace_id": trace_id,
            "algorithm": request.algorithm,
            "net": request.name or "?",
            "eps": result.get("eps"),
            "ok": bool(result.get("ok", False)),
            "status": status,
            "cache_hit": bool(result.get("cache_hit", False)),
            "exhausted": bool(result.get("exhausted", False)),
            "produced_by": result.get("produced_by"),
            "wall_seconds": result.get("wall_seconds"),
            "connection_id": connection_id,
            "connection_request": connection_request,
            "counters": dict(result.get("counters") or {}),
            "serve": dict(self.counters),
        }
        if not entry["ok"]:
            entry["error_type"] = result.get("error_type")
            entry["error"] = result.get("error")
        self._log_handle.write(
            json.dumps(entry, allow_nan=False, sort_keys=True) + "\n"
        )
        self._log_handle.flush()


def _cached_result(
    request: ServeRequest, cached: Tuple[Any, Any]
) -> Dict[str, Any]:
    """A response served from the memoization tier — no solver ran."""
    from repro.serve.protocol import (
        encode_eps,
        report_payload,
        tree_payload,
    )

    report, tree = cached
    return {
        "ok": True,
        "algorithm": request.algorithm,
        "eps": encode_eps(request.eps),
        "net": report.net_name,
        "tree": tree_payload(tree),
        "report": report_payload(report),
        "produced_by": request.algorithm,
        "exhausted": False,
        "attempts": [
            {
                "algorithm": request.algorithm,
                "outcome": "cached",
                "checkpoints": 0,
                "elapsed_seconds": 0.0,
            }
        ],
        "cache_hit": True,
        "wall_seconds": 0.0,
    }


def _error_payload(
    message: str, status: int, code: str
) -> Tuple[Dict[str, Any], int, Dict[str, str]]:
    return {"error": {"code": code, "message": message}}, status, {}


_STATUS_TEXT = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    431: "Request Header Fields Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


def _http_response(
    status: int,
    payload: Dict[str, Any],
    keep_alive: bool,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    body = json.dumps(payload, allow_nan=False, sort_keys=True).encode(
        "utf-8"
    )
    reason = _STATUS_TEXT.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for key, value in (extra_headers or {}).items():
        lines.append(f"{key}: {value}")
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def _error_response(exc: ProtocolError) -> Tuple[bytes, int]:
    payload, status, _ = _error_payload(str(exc), exc.status, exc.code)
    return _http_response(status, payload, keep_alive=False), status


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
class ServerThread:
    """A live daemon on a background thread — tests and the bench
    load generator drive a real socket server without blocking."""

    def __init__(self, config: ServeConfig) -> None:
        self.server = ReproServer(config)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    @property
    def port(self) -> int:
        assert self.server.port is not None, "server not started"
        return self.server.port

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self) -> "ServerThread":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(30.0):
            raise RuntimeError("repro-serve thread failed to start in time")
        if self._startup_error is not None:
            raise RuntimeError(
                f"repro-serve failed to start: {self._startup_error}"
            )
        return self

    def _run(self) -> None:
        self._loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self._loop)
        try:
            self._loop.run_until_complete(self.server.start())
        # lint: allow-broad-except(startup failures must surface on the caller's thread, not die silently here)
        except Exception as exc:  # noqa: BLE001
            self._startup_error = exc
            self._started.set()
            return
        self._started.set()
        self._loop.run_forever()

    def stop(self) -> None:
        if self._loop is None or self._startup_error is not None:
            return
        future = asyncio.run_coroutine_threadsafe(
            self.server.drain(), self._loop
        )
        future.result(timeout=60.0)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=10.0)
        self._loop.close()
        self._loop = None


def serve_forever(config: ServeConfig) -> int:
    """Run a daemon until SIGTERM/SIGINT, then drain; returns 0."""

    async def _run() -> None:
        server = ReproServer(config)
        await server.start()
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)
        print(
            f"repro-serve listening on "
            f"http://{config.host}:{server.port} "
            f"(workers={config.workers}, "
            f"store={'on' if config.store else 'off'})",
            flush=True,
        )
        await stop.wait()
        print("repro-serve draining...", flush=True)
        await server.drain()
        print("repro-serve stopped cleanly", flush=True)

    asyncio.run(_run())
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="long-running routing-as-a-service daemon",
    )
    parser.add_argument("--host", default=None, help=f"bind address (default {DEFAULT_HOST})")
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help=f"TCP port, 0 for ephemeral (default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=f"solver pool size (default 2, env {WORKERS_ENV_VAR})",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="result-store directory used as the memoization tier",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help=f"in-flight request cap before 503 (default 64, "
        f"env {MAX_QUEUE_ENV_VAR})",
    )
    parser.add_argument(
        "--log",
        default=None,
        help=f"per-request JSONL log path (env {LOG_ENV_VAR})",
    )
    parser.add_argument(
        "--no-trace",
        action="store_true",
        help="skip per-request trace sessions in workers",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = ServeConfig.from_env(
        host=args.host,
        port=args.port,
        workers=args.workers,
        store=args.store,
        max_queue=args.max_queue,
        log_path=args.log,
        trace=False if args.no_trace else None,
    )
    return serve_forever(config)


if __name__ == "__main__":
    import sys

    sys.exit(main())
