"""The pool side of ``repro-serve``: one request in, one JSON dict out.

:func:`execute_request` is the module-level (picklable) function the
daemon submits to its persistent ``ProcessPoolExecutor``.  It mirrors
the batch engine's ``execute_job`` isolation contract — *never raise*,
failures become structured error dicts — but keeps the full
:class:`~repro.runtime.solve.PartialResult` honesty metadata
(``produced_by``, ``exhausted``, per-attempt outcomes) that the batch
record flattens away, because the serve protocol promises it per
response.

The return value is a plain JSON-ready dict (edges, floats, strings):
nothing solver-shaped crosses back over the pickle boundary, so the
daemon can serialize a response without importing tree classes into its
hot path.
"""

from __future__ import annotations

import time
import traceback
from typing import Any, Dict, Optional, Tuple

from repro.observability import start_trace
from repro.persistence.store import ResultStore, cacheable, store_from_env
from repro.serve.protocol import (
    ServeRequest,
    encode_eps,
    report_payload,
    tree_payload,
)

__all__ = ["execute_request"]

#: Per-process memo of the explicit-path store, mirroring the
#: ``store_from_env`` memoization: the daemon passes the same path on
#: every request, and rebuilding a ``ResultStore`` (mkdir + stat) per
#: request is exactly the hot-path overhead the env-path fix removed.
_STORE_CACHE: Optional[Tuple[str, ResultStore]] = None


def _resolve_store(store_path: Optional[str]) -> Optional[ResultStore]:
    global _STORE_CACHE
    if not store_path:
        return store_from_env()
    if _STORE_CACHE is not None and _STORE_CACHE[0] == store_path:
        return _STORE_CACHE[1]
    store = ResultStore(store_path)
    _STORE_CACHE = (store_path, store)
    return store


def _solve(request: ServeRequest, net) -> Dict[str, Any]:
    """Run the request's solver (ladder or direct) to a result dict."""
    from repro.analysis.metrics import evaluate, timed
    from repro.analysis.runners import get_runner
    from repro.runtime.solve import solve

    policy = request.policy()
    if policy is not None:
        start = time.perf_counter()
        partial = solve(net, request.eps, policy)
        seconds = time.perf_counter() - start
        tree = partial.tree
        produced_by = partial.produced_by
        exhausted = partial.exhausted
        attempts = [
            {
                "algorithm": attempt.algorithm,
                "outcome": attempt.outcome,
                "checkpoints": attempt.checkpoints,
                "elapsed_seconds": attempt.elapsed_seconds,
            }
            for attempt in partial.attempts
        ]
    else:
        runner = get_runner(request.algorithm)
        tree, seconds = timed(runner, net, request.eps)
        produced_by = request.algorithm
        exhausted = False
        attempts = [
            {
                "algorithm": request.algorithm,
                "outcome": "ok",
                "checkpoints": 0,
                "elapsed_seconds": seconds,
            }
        ]
    report = evaluate(
        request.algorithm,
        net,
        tree,
        request.eps,
        cpu_seconds=seconds,
    )
    return {
        "tree_obj": tree,
        "report_obj": report,
        "produced_by": produced_by,
        "exhausted": exhausted,
        "attempts": attempts,
    }


def execute_request(
    request: ServeRequest,
    store_path: Optional[str] = None,
    trace: bool = False,
) -> Dict[str, Any]:
    """Solve one admitted request; never raises.

    The daemon has already consulted the store for cacheable requests,
    so this function only *writes back*: a cold deterministic solve
    lands in the store and the next identical request never reaches the
    pool.  ``trace=True`` runs the solve inside a
    :class:`~repro.observability.trace.TraceSession` and attaches its
    counter totals to the result for the daemon's JSONL log.
    """
    started = time.perf_counter()
    session = start_trace(f"serve:{request.algorithm}") if trace else None
    try:
        net = request.build_net()
        if session is not None:
            with session:
                outcome = _solve(request, net)
        else:
            outcome = _solve(request, net)
        tree = outcome.pop("tree_obj")
        report = outcome.pop("report_obj")
        store = _resolve_store(store_path)
        if store is not None and request.cacheable:
            spec = request.to_spec(net)
            if cacheable(spec):
                # Never raises; an unwritable store only costs reuse.
                store.store(spec, report, tree)
        result: Dict[str, Any] = {
            "ok": True,
            "algorithm": request.algorithm,
            "eps": encode_eps(request.eps),
            "net": net.name or "?",
            "tree": tree_payload(tree),
            "report": report_payload(report),
            "cache_hit": False,
            "wall_seconds": time.perf_counter() - started,
        }
        result.update(outcome)
    # lint: allow-broad-except(worker isolation — any failure must come back as a structured error dict, never poison the pool)
    except Exception as exc:  # noqa: BLE001
        detail = traceback.format_exception_only(type(exc), exc)[-1].strip()
        result = {
            "ok": False,
            "algorithm": request.algorithm,
            "eps": encode_eps(request.eps),
            "net": request.name or "?",
            "error": detail,
            "error_type": type(exc).__name__,
            "wall_seconds": time.perf_counter() - started,
        }
    if session is not None:
        result["counters"] = session.counter_totals()
    return result
