"""Reading and writing net placements.

A tiny line-oriented format (``.pts``) keeps instances inspectable and
diffable::

    # optional comments
    metric l1
    source 10.0 20.0
    sink 30.0 40.0
    sink 50.0 60.0

Key order is free except that exactly one ``source`` line must appear.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Optional, Tuple, Union

from repro.core.exceptions import InvalidNetError
from repro.core.geometry import Metric
from repro.core.net import Net

PathLike = Union[str, Path]


def dumps(net: Net) -> str:
    """Serialise a net to the ``.pts`` text format."""
    out = io.StringIO()
    if net.name:
        out.write(f"# {net.name}\n")
    out.write(f"metric {net.metric.value}\n")
    sx, sy = net.source
    out.write(f"source {sx!r} {sy!r}\n")
    for x, y in net.sinks:
        out.write(f"sink {x!r} {y!r}\n")
    return out.getvalue()


def loads(text: str, name: Optional[str] = None) -> Net:
    """Parse a net from the ``.pts`` text format."""
    metric: "Metric | str" = Metric.L1
    source: Optional[Tuple[float, float]] = None
    sinks: List[Tuple[float, float]] = []
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        keyword = parts[0].lower()
        try:
            if keyword == "metric":
                metric = Metric.parse(parts[1])
            elif keyword == "source":
                if source is not None:
                    raise InvalidNetError(f"line {lineno}: second source")
                source = (float(parts[1]), float(parts[2]))
            elif keyword == "sink":
                sinks.append((float(parts[1]), float(parts[2])))
            else:
                raise InvalidNetError(
                    f"line {lineno}: unknown keyword {keyword!r}"
                )
        except (IndexError, ValueError) as exc:
            raise InvalidNetError(f"line {lineno}: malformed entry {raw!r}") from exc
    if source is None:
        raise InvalidNetError("no source line found")
    return Net(source, sinks, metric=metric, name=name)


def save(net: Net, path: PathLike) -> None:
    """Write ``net`` to ``path`` in the ``.pts`` format."""
    Path(path).write_text(dumps(net))


def load(path: PathLike) -> Net:
    """Read a net from a ``.pts`` file (net name = file stem)."""
    file_path = Path(path)
    return loads(file_path.read_text(), name=file_path.stem)
