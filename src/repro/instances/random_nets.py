"""Random benchmark nets — the paper's benchmark set (4).

Section 7 evaluates the heuristics on "five sets of 5 to 15 sinks and 50
random test cases for each set".  We reproduce that: uniformly random
terminal placements in a square, seeded deterministically per (size,
case) so every table regenerates bit-identically.
"""

from __future__ import annotations

from typing import Iterator, List, Sequence, Tuple

import numpy as np

from repro.core.exceptions import InvalidParameterError
from repro.core.geometry import Metric
from repro.core.net import Net

NET_SIZES: Tuple[int, ...] = (5, 8, 10, 12, 15)
"""Sink counts of the paper's benchmark set (4)."""

CASES_PER_SIZE = 50
"""Random cases per size in the paper's Table 4."""

_REGION = 1000.0


def random_net(
    num_sinks: int,
    seed: int,
    region: float = _REGION,
    metric: "Metric | str" = Metric.L1,
) -> Net:
    """One random net: a source and ``num_sinks`` sinks, uniform in a square.

    The same ``(num_sinks, seed)`` pair always produces the same net.
    Coordinates are drawn on a fine integer lattice so ties in edge
    weights occur at realistic (nonzero) rates, as with the integer
    benchmark coordinates of the era.
    """
    if num_sinks < 1:
        raise InvalidParameterError(f"need at least one sink, got {num_sinks}")
    if region <= 0:
        raise InvalidParameterError(f"region must be positive, got {region}")
    rng = np.random.default_rng((num_sinks, seed))
    while True:
        grid = rng.integers(0, int(region) + 1, size=(num_sinks + 1, 2))
        points = [(float(x), float(y)) for x, y in grid]
        if len(set(points)) == len(points):
            break
    return Net(
        points[0],
        points[1:],
        metric=metric,
        name=f"rnd{num_sinks}_{seed}",
    )


def benchmark_set4(
    sizes: Sequence[int] = NET_SIZES,
    cases: int = CASES_PER_SIZE,
    metric: "Metric | str" = Metric.L1,
) -> Iterator[Tuple[int, int, Net]]:
    """Yield ``(num_sinks, case_index, net)`` over the whole set (4)."""
    for size in sizes:
        for case in range(cases):
            yield size, case, random_net(size, case, metric=metric)


def random_nets_for_size(
    num_sinks: int,
    cases: int = CASES_PER_SIZE,
    metric: "Metric | str" = Metric.L1,
) -> List[Net]:
    """The ``cases`` random nets of one table row."""
    return [random_net(num_sinks, case, metric=metric) for case in range(cases)]


def depth_study_nets(total: int = 2750, min_sinks: int = 5, max_sinks: int = 15) -> Iterator[Net]:
    """Nets matching the BKEX depth study population (Section 5).

    The paper used 2750 random nets of 5 to 15 sinks; we spread ``total``
    cases round-robin over the size range with fresh seeds.
    """
    sizes = list(range(min_sinks, max_sinks + 1))
    for index in range(total):
        size = sizes[index % len(sizes)]
        yield random_net(size, 10_000 + index)
