"""Multi-net workloads: the global-routing use case of the paper's intro.

The introduction motivates BMST with performance-driven *global
routing*: a design holds thousands of signal nets, each with one driver
and (typically) fewer than ten sinks, and every critical net needs its
source-sink paths bounded while total wirelength (power, area) stays
small.  A :class:`Workload` models that: a bag of nets with criticality
flags, routed net-by-net with any of the library's constructions.

``synthetic_design`` generates a seeded random design; pin placements
cluster around per-net centres so nets look like logic cones, not
uniform dust.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net
from repro.analysis.metrics import AnyTree, tree_longest_path
from repro.algorithms.mst import mst_cost


@dataclass(frozen=True)
class WorkloadNet:
    """One net of a design plus its routing policy inputs."""

    net: Net
    critical: bool = False
    """Critical nets get the bounded construction; others get the MST."""


@dataclass
class Workload:
    """A named collection of nets to route together."""

    name: str
    nets: List[WorkloadNet] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.nets)

    @property
    def critical_count(self) -> int:
        return sum(1 for item in self.nets if item.critical)

    def total_pins(self) -> int:
        return sum(item.net.num_terminals for item in self.nets)


def synthetic_design(
    num_nets: int,
    seed: int = 0,
    sinks_low: int = 2,
    sinks_high: int = 9,
    critical_fraction: float = 0.3,
    die: float = 10_000.0,
    cone_spread: float = 800.0,
    name: Optional[str] = None,
) -> Workload:
    """A seeded random design of small logic-cone-like nets.

    Each net's driver sits at a random die location; its sinks cluster
    within ``cone_spread`` of the driver (a fanout cone).  A fixed
    fraction of nets, chosen deterministically, is marked critical.
    """
    if num_nets < 1:
        raise InvalidParameterError(f"need at least one net, got {num_nets}")
    if not (0.0 <= critical_fraction <= 1.0):
        raise InvalidParameterError(
            f"critical_fraction must be in [0, 1], got {critical_fraction}"
        )
    if sinks_low < 1 or sinks_high < sinks_low:
        raise InvalidParameterError(
            f"bad sink range [{sinks_low}, {sinks_high}]"
        )
    rng = np.random.default_rng(seed)
    nets: List[WorkloadNet] = []
    for index in range(num_nets):
        sinks_n = int(rng.integers(sinks_low, sinks_high + 1))
        while True:
            source = rng.uniform(0.0, die, size=2)
            offsets = rng.uniform(-cone_spread, cone_spread, size=(sinks_n, 2))
            points = [tuple(source)] + [
                tuple(source + offset) for offset in offsets
            ]
            if len(set(points)) == len(points):
                break
        net = Net(
            points[0], points[1:], metric="l1", name=f"n{index}"
        )
        nets.append(
            WorkloadNet(net=net, critical=(index % 100) < critical_fraction * 100)
        )
    return Workload(name=name or f"design{num_nets}_{seed}", nets=nets)


@dataclass(frozen=True)
class RoutedNet:
    """Routing result for one net of a workload."""

    name: str
    critical: bool
    cost: float
    mst_reference: float
    path_ratio: float
    seconds: float

    @property
    def perf_ratio(self) -> float:
        return self.cost / self.mst_reference


@dataclass(frozen=True)
class WorkloadReport:
    """Aggregate routing result for a whole design."""

    workload: str
    routed: Tuple[RoutedNet, ...]
    total_cost: float
    total_mst_cost: float
    worst_path_ratio: float
    seconds: float

    @property
    def cost_overhead(self) -> float:
        """Total wirelength overhead over the all-MST routing."""
        return self.total_cost / self.total_mst_cost - 1.0

    def critical_nets(self) -> List[RoutedNet]:
        return [net for net in self.routed if net.critical]


def route_workload(
    workload: Workload,
    construct: Callable[[Net], AnyTree],
    critical_only: bool = True,
) -> WorkloadReport:
    """Route a design: critical nets through ``construct``, the rest as MSTs.

    ``construct`` maps a net to any tree (spanning or Steiner); pass
    ``critical_only=False`` to push every net through it.
    """
    from repro.algorithms.mst import mst

    routed: List[RoutedNet] = []
    total_cost = 0.0
    total_reference = 0.0
    worst_ratio = 0.0
    start_all = time.perf_counter()
    for item in workload.nets:
        reference = mst_cost(item.net)
        start = time.perf_counter()
        if item.critical or not critical_only:
            tree = construct(item.net)
        else:
            tree = mst(item.net)
        seconds = time.perf_counter() - start
        longest = float(tree_longest_path(tree))
        ratio = longest / item.net.radius()
        routed.append(
            RoutedNet(
                name=item.net.name or "?",
                critical=item.critical,
                cost=float(tree.cost),
                mst_reference=reference,
                path_ratio=ratio,
                seconds=seconds,
            )
        )
        total_cost += float(tree.cost)
        total_reference += reference
        if item.critical or not critical_only:
            worst_ratio = max(worst_ratio, ratio)
    return WorkloadReport(
        workload=workload.name,
        routed=tuple(routed),
        total_cost=total_cost,
        total_mst_cost=total_reference,
        worst_path_ratio=worst_ratio,
        seconds=time.perf_counter() - start_all,
    )


def compare_policies(
    workload: Workload,
    policies: Sequence[Tuple[str, Callable[[Net], AnyTree]]],
) -> Dict[str, WorkloadReport]:
    """Route the same design under several constructions."""
    return {
        label: route_workload(workload, construct)
        for label, construct in policies
    }
