"""Benchmark instances: special, random and large synthetic placements."""

from repro.instances.registry import (
    benchmark_names,
    large_benchmarks,
    load,
    special_benchmarks,
)
from repro.instances.structured import (
    bus,
    flipflop_array,
    hub,
    ring,
    two_clusters,
)
from repro.instances.converters import (
    dumps_workload,
    load_workload,
    loads_workload,
    save_workload,
)
from repro.instances.workloads import (
    RoutedNet,
    Workload,
    WorkloadNet,
    WorkloadReport,
    compare_policies,
    route_workload,
    synthetic_design,
)
from repro.instances.random_nets import (
    CASES_PER_SIZE,
    NET_SIZES,
    benchmark_set4,
    random_net,
    random_nets_for_size,
)

__all__ = [
    "dumps_workload",
    "load_workload",
    "loads_workload",
    "save_workload",
    "RoutedNet",
    "Workload",
    "WorkloadNet",
    "WorkloadReport",
    "compare_policies",
    "route_workload",
    "synthetic_design",
    "bus",
    "flipflop_array",
    "hub",
    "ring",
    "two_clusters",
    "benchmark_names",
    "large_benchmarks",
    "load",
    "special_benchmarks",
    "CASES_PER_SIZE",
    "NET_SIZES",
    "benchmark_set4",
    "random_net",
    "random_nets_for_size",
]
