"""The special benchmarks p1-p4 and the paper's worked-example nets.

The four p* benchmarks were "generated specially to test extreme
results" (Section 7); the paper gives their geometric recipe and their
Table 1 signature (point count, R, r), from which we reconstruct them:

* **p1** — the Figure 13 adversarial family: a far-away *zigzag cluster*
  of sinks, all at nearly the same distance from the source, arranged so
  that hopping between neighbours overshoots the ``eps = 0`` bound.  The
  MST is one long wire plus a short chain; the bounded tree degenerates
  toward a star, giving ``cost(BKT)/cost(MST) -> N``.
* **p2** — p1 plus one extra sink halfway between the source and the
  cluster (Table 1: ``r`` drops to ~10); this is the instance where
  BPRIM's greedy goes badly at ``eps = 0.2``.
* **p3** — the Figure 1 configuration quoted from Cong et al.: a 4x4
  sink grid with the source at a corner offset, scaled so ``R = 16.0``
  and ``r = 6.1`` exactly as in Table 1.
* **p4** — sinks scattered around a circle of diameter 20 (Figure 13
  variant); rescaled so ``R`` matches Table 1's 10.4.

Also provided: the 5-point BKRUS walkthrough of Figure 4 and the
4-point non-optimality instance of Figure 5, as exact nets for tests.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.core.geometry import Metric
from repro.core.net import Net


def p1(cluster_size: int = 5) -> Net:
    """Figure 13 family: distant zigzag cluster (default = paper's p1).

    ``cluster_size`` scales the family for the Figure 13 study
    (``cost(BKT)/cost(MST)`` grows like the number of sinks).
    """
    sinks: List[Tuple[float, float]] = []
    spread = max(cluster_size - 1, 1)
    for k in range(cluster_size):
        # Zigzag: swing 0.4k off-axis with alternating sign and pull x
        # back so that dist(S, sink_k) = 20 + 0.4 k / (n - 1) — i.e.
        # R = 20.4 and r = 20.0 at every cluster size, matching Table 1
        # — while neighbour hops cost ~0.4 (2k + 1), soon far beyond
        # the eps * R slack, which forces direct wires as eps -> 0.
        x = 20.0 - 0.4 * k + 0.4 * k / spread
        y = 0.4 * k * (1.0 if k % 2 == 0 else -1.0)
        sinks.append((x, y))
    return Net((0.0, 0.0), sinks, metric=Metric.L1, name="p1")


def p2() -> Net:
    """p1's configuration plus a sink halfway to the cluster.

    Table 1 lists 8 points for p2 against p1's 6, so the cluster here
    carries one extra member alongside the midway sink (r = 10.0,
    R = 20.4 as tabulated).
    """
    base = p1(cluster_size=6)
    sinks = list(base.sinks)
    sinks.insert(0, (10.0, 0.0))
    return Net((0.0, 0.0), sinks, metric=Metric.L1, name="p2")


def p3() -> Net:
    """Figure 1 configuration: 4x4 sink grid, R = 16.0, r = 6.1."""
    low, high = 3.05, 8.0
    step = (high - low) / 3.0
    coords = [low + i * step for i in range(4)]
    sinks = [(x, y) for x in coords for y in coords]
    return Net((0.0, 0.0), sinks, metric=Metric.L1, name="p3")


def p4(num_sinks: int = 30) -> Net:
    """Sinks scattered around a circle of diameter 20, rescaled to R=10.4.

    Radii follow a deterministic pattern (a small multiplicative
    Weyl-like sequence) so the instance is irregular but reproducible.
    """
    raw: List[Tuple[float, float]] = []
    for k in range(num_sinks):
        angle = 2.0 * math.pi * k / num_sinks
        wobble = 0.56 + 0.44 * (((k * 7) % 10) / 10.0)
        radius = 10.0 * wobble
        raw.append((radius * math.cos(angle), radius * math.sin(angle)))
    # Rescale so the farthest Manhattan distance equals Table 1's 10.4.
    worst = max(abs(x) + abs(y) for x, y in raw)
    scale = 10.4 / worst
    sinks = [(x * scale, y * scale) for x, y in raw]
    return Net((0.0, 0.0), sinks, metric=Metric.L1, name="p4")


FIGURE4_EPS = 0.4375
"""Slack used in the Figure 4 walkthrough (bound = 1.4375 * R = 11.5)."""


def figure4_net() -> Net:
    """A 5-terminal walkthrough net in the style of Figure 4 (R = 8).

    With ``eps = FIGURE4_EPS`` (bound 11.5) the BKRUS scan exhibits every
    interesting event of the paper's worked example: a far sink pair
    merges first, the cheap sink-sink edge (a, c) is rejected for a
    bound violation (the merged radius rides along), and the source
    finally attaches through the intermediate sink b rather than the
    direct edge to the farthest sink a.
    """
    source = (0.0, 0.0)
    a = (6.0, 2.0)   # dist(S, a) = 8 = R
    b = (5.0, 0.0)   # dist(S, b) = 5
    c = (4.0, 4.0)   # dist(S, c) = 8 = R
    d = (7.0, 0.0)   # dist(S, d) = 7
    return Net(source, [a, b, c, d], metric=Metric.L1, name="figure4")


FIGURE5_EPS = 8.2 / 6.5 - 1.0
"""Slack making the bound 8.2 on :func:`figure5_net` (R = 6.5)."""


def figure5_net() -> Net:
    """An instance in the spirit of Figure 5: BKRUS is provably suboptimal.

    With bound 8.2 (``eps = FIGURE5_EPS``), the cheapest edge (a, b)
    passes the feasibility test and is accepted, after which both hub
    edges (c, a) and (c, b) exceed the bound (the pair's radius rides
    along), forcing the expensive direct edge (S, a): total cost 11.
    Rejecting (a, b) instead would have allowed the hub tree
    {(S, c), (c, a), (c, b)} of cost 10 — the optimum.  The exact solvers
    recover the cost-10 tree; BKRUS cannot without backtracking.
    """
    source = (0.0, 0.0)
    a = (4.75, 1.25)  # dist(S, a) = 6,   dist(c, a) = 3.5, dist(a, b) = 2
    b = (4.0, 2.5)    # dist(S, b) = 6.5, dist(c, b) = 3.5
    c = (1.5, 1.5)    # dist(S, c) = 3
    return Net(source, [a, b, c], metric=Metric.L1, name="figure5")


def figure13_family(num_sinks: int) -> Net:
    """The p1 generator at arbitrary cluster sizes, for the Figure 13
    study of ``cost(BKT)/cost(MST)`` growth."""
    net = p1(cluster_size=num_sinks)
    return Net(net.source, net.sinks, metric=net.metric, name=f"p1x{num_sinks}")
