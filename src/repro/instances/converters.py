"""Multi-net design serialisation (a Bookshelf-flavoured text format).

Workloads need to round-trip to disk for regression suites and external
tools.  The format keeps the Bookshelf spirit — one header line, then
per-net blocks — while staying line-oriented and diffable::

    design <name>
    net <name> critical|normal
      source <x> <y>
      sink <x> <y>
      ...

Blank lines and ``#`` comments are ignored.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import List, Optional, Union

from repro.core.exceptions import InvalidNetError
from repro.core.net import Net
from repro.instances.workloads import Workload, WorkloadNet

PathLike = Union[str, Path]


def dumps_workload(workload: Workload) -> str:
    """Serialise a workload to the design text format."""
    out = io.StringIO()
    out.write(f"design {workload.name}\n")
    for item in workload.nets:
        flag = "critical" if item.critical else "normal"
        out.write(f"net {item.net.name or 'unnamed'} {flag}\n")
        sx, sy = item.net.source
        out.write(f"  source {sx!r} {sy!r}\n")
        for x, y in item.net.sinks:
            out.write(f"  sink {x!r} {y!r}\n")
    return out.getvalue()


def loads_workload(text: str) -> Workload:
    """Parse a workload from the design text format."""
    name: Optional[str] = None
    nets: List[WorkloadNet] = []
    current_name: Optional[str] = None
    current_critical = False
    current_source = None
    current_sinks: List = []

    def flush() -> None:
        nonlocal current_name, current_source, current_sinks
        if current_name is None:
            return
        if current_source is None:
            raise InvalidNetError(f"net {current_name!r} has no source")
        nets.append(
            WorkloadNet(
                net=Net(current_source, current_sinks, name=current_name),
                critical=current_critical,
            )
        )
        current_name = None
        current_source = None
        current_sinks = []

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        keyword = parts[0].lower()
        try:
            if keyword == "design":
                name = parts[1]
            elif keyword == "net":
                flush()
                current_name = parts[1]
                current_critical = parts[2].lower() == "critical"
            elif keyword == "source":
                current_source = (float(parts[1]), float(parts[2]))
            elif keyword == "sink":
                current_sinks.append((float(parts[1]), float(parts[2])))
            else:
                raise InvalidNetError(
                    f"line {lineno}: unknown keyword {keyword!r}"
                )
        except (IndexError, ValueError) as exc:
            raise InvalidNetError(
                f"line {lineno}: malformed entry {raw!r}"
            ) from exc
    flush()
    if name is None:
        raise InvalidNetError("no design header found")
    return Workload(name=name, nets=nets)


def save_workload(workload: Workload, path: PathLike) -> None:
    Path(path).write_text(dumps_workload(workload))


def load_workload(path: PathLike) -> Workload:
    return loads_workload(Path(path).read_text())
