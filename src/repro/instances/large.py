"""Synthetic analogues of the large benchmarks (pr1, pr2, r1-r5).

The paper's large instances are the MCNC Primary1/Primary2 sink
placements (pr1, pr2) and Tsay's exact-zero-skew benchmarks (r1-r5).
Neither placement set is redistributable, so we synthesise stand-ins
that preserve what the experiments actually exercise:

* the point count (at full scale),
* the geometry class — row-structured standard-cell-like placements for
  pr*, uniform random spreads for r*,
* the source position signature ``r / R`` from Table 1 (the paper added
  a source node itself, since the originals ship without one).

Because BKRUS is O(V^3) and the exchange heuristics are far heavier, the
generators accept a ``scale`` in (0, 1] that shrinks the point count
while keeping the geometry class; benchmark reports note the scale used.
The reproduced quantities are dimensionless cost/path ratios, which
depend on the placement *class*, not on the exact MCNC coordinates —
see DESIGN.md's substitution log.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.core.exceptions import InvalidParameterError
from repro.core.geometry import Metric
from repro.core.net import Net


@dataclass(frozen=True)
class LargeBenchmarkSpec:
    """Signature of one large benchmark from Table 1."""

    name: str
    num_points: int
    """Terminal count including the added source."""
    radius: float
    """Table 1's R — source to farthest sink."""
    nearest: float
    """Table 1's r — source to nearest sink."""
    style: str
    """Either ``"rows"`` (standard-cell) or ``"uniform"``."""
    seed: int


LARGE_SPECS: Dict[str, LargeBenchmarkSpec] = {
    spec.name: spec
    for spec in (
        LargeBenchmarkSpec("pr1", 270, 542.0, 27.0, "rows", 101),
        LargeBenchmarkSpec("pr2", 604, 981.0, 17.0, "rows", 102),
        LargeBenchmarkSpec("r1", 268, 58_700.0, 1_175.0, "uniform", 201),
        LargeBenchmarkSpec("r2", 599, 86_554.0, 1_246.0, "uniform", 202),
        LargeBenchmarkSpec("r3", 863, 85_509.0, 1_357.0, "uniform", 203),
        LargeBenchmarkSpec("r4", 1_904, 124_357.0, 564.0, "uniform", 204),
        LargeBenchmarkSpec("r5", 3_102, 138_318.0, 640.0, "uniform", 205),
    )
}


def large_benchmark(name: str, scale: float = 1.0) -> Net:
    """Generate the synthetic analogue of a large benchmark.

    ``scale`` shrinks the sink count multiplicatively (minimum 10 sinks);
    the placement is rescaled so the source-to-farthest distance matches
    the Table 1 ``R`` regardless of scale.
    """
    if name not in LARGE_SPECS:
        raise InvalidParameterError(
            f"unknown large benchmark {name!r}; choose from {sorted(LARGE_SPECS)}"
        )
    if not (0.0 < scale <= 1.0):
        raise InvalidParameterError(f"scale must be in (0, 1], got {scale}")
    spec = LARGE_SPECS[name]
    num_sinks = max(10, int(round((spec.num_points - 1) * scale)))
    rng = np.random.default_rng(spec.seed)
    if spec.style == "rows":
        sinks = _row_placement(num_sinks, rng)
    else:
        sinks = _uniform_placement(num_sinks, rng)
    return _attach_source(spec, sinks, scale)


def _row_placement(num_sinks: int, rng: np.random.Generator) -> np.ndarray:
    """Standard-cell-like rows: discrete y pitches, clustered x."""
    num_rows = max(4, int(math.sqrt(num_sinks)))
    row_pitch = 10.0
    width = num_sinks * 2.0
    rows = rng.integers(0, num_rows, size=num_sinks)
    # Cluster x around a handful of column centres per row.
    centres = rng.uniform(0, width, size=max(3, num_rows // 2))
    which = rng.integers(0, len(centres), size=num_sinks)
    xs = centres[which] + rng.normal(0.0, width / 20.0, size=num_sinks)
    ys = rows * row_pitch + rng.uniform(-1.0, 1.0, size=num_sinks)
    return np.column_stack([xs, ys])


def _uniform_placement(num_sinks: int, rng: np.random.Generator) -> np.ndarray:
    side = 10_000.0
    return rng.uniform(0.0, side, size=(num_sinks, 2))


def _attach_source(
    spec: LargeBenchmarkSpec, sinks: np.ndarray, scale: float
) -> Net:
    """Place the source so r/R matches Table 1, then rescale to R."""
    centroid = sinks.mean(axis=0)
    # Manhattan distances from the centroid; the source sits a fraction
    # of the way from the centroid toward the nearest sink so that the
    # nearest-sink distance lands near the target ratio.
    dists = np.abs(sinks - centroid).sum(axis=1)
    nearest_idx = int(np.argmin(dists))
    target_ratio = spec.nearest / spec.radius
    far = float(dists.max())
    offset = target_ratio * far
    direction = sinks[nearest_idx] - centroid
    norm = float(np.abs(direction).sum())
    # Exact zero means the nearest sink coincides with the centroid, so
    # there is no direction to offset along; any tolerance here would
    # wrongly snap nearly-central (but usable) directions to the x-axis.
    if norm == 0.0:  # lint: disable=R002 (exact-zero degenerate-direction sentinel)
        direction = np.asarray([1.0, 0.0])
        norm = 1.0
    source = sinks[nearest_idx] - direction / norm * offset
    # Rescale everything so R matches the Table 1 value.
    all_d = np.abs(sinks - source).sum(axis=1)
    factor = spec.radius / float(all_d.max())
    scaled = (sinks - source) * factor
    net = Net(
        (0.0, 0.0),
        [(float(x), float(y)) for x, y in scaled],
        metric=Metric.L1,
        # Exact comparison on purpose: 1.0 is the literal default a
        # caller passes for "full size"; 0.999999 is a scaled benchmark
        # and must be labelled as such.
        name=spec.name if scale == 1.0 else f"{spec.name}@{scale:g}",  # lint: disable=R002 (exact user-supplied default)
    )
    return net


def table1_row(net: Net) -> Tuple[str, int, int, float, float]:
    """One row of Table 1: name, #pts, #edges, R, r."""
    n = net.num_terminals
    return (
        net.name or "?",
        n,
        n * (n - 1) // 2,
        net.radius(),
        net.nearest_sink_distance(),
    )
