"""Structured net families: arrays, rings, buses, hubs.

Real nets are rarely uniform-random: clock networks drive regular
flip-flop arrays, buses fan out along a line, datapaths cluster.  These
deterministic generators complement the random set for examples, tests,
and robustness studies — each family stresses a different aspect of the
bounded constructions:

* arrays reward trunk sharing (Steiner savings, clock LUB grids);
* rings around an off-centre source reproduce the p4 pathology shape;
* buses make the MST a worst-case chain for the radius bound;
* hubs make the SPT and MST coincide (sanity anchors);
* two-cluster nets exercise the condition (3-b) witness logic hard.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.core.exceptions import InvalidParameterError
from repro.core.geometry import Metric
from repro.core.net import Net


def flipflop_array(
    rows: int,
    cols: int,
    pitch: float = 10.0,
    source_offset: Tuple[float, float] = (-20.0, -20.0),
) -> Net:
    """A ``rows x cols`` register array clocked from an offset corner."""
    if rows < 1 or cols < 1:
        raise InvalidParameterError("array needs at least one row and column")
    if rows * cols < 1:
        raise InvalidParameterError("empty array")
    sinks = [
        (float(c) * pitch, float(r) * pitch)
        for r in range(rows)
        for c in range(cols)
    ]
    return Net(
        source_offset, sinks, metric=Metric.L1, name=f"array{rows}x{cols}"
    )


def ring(
    num_sinks: int,
    radius: float = 100.0,
    source_at_centre: bool = True,
) -> Net:
    """Sinks evenly spaced on a circle (the p4 stress shape).

    With the source at the centre every sink is equidistant in L2 and
    nearly so in L1; chains around the ring burn the eps slack quickly.
    """
    if num_sinks < 1:
        raise InvalidParameterError("ring needs at least one sink")
    sinks = []
    for k in range(num_sinks):
        angle = 2.0 * math.pi * k / num_sinks + 0.1
        sinks.append((radius * math.cos(angle), radius * math.sin(angle)))
    source = (0.0, 0.0) if source_at_centre else (2.0 * radius, 0.0)
    return Net(source, sinks, metric=Metric.L1, name=f"ring{num_sinks}")


def bus(
    num_sinks: int,
    pitch: float = 25.0,
    stub: float = 5.0,
) -> Net:
    """A linear bus: sinks along a line with alternating short stubs.

    The MST is the chain, whose radius is ~num_sinks * pitch — the
    configuration where the radius bound forces the most restructuring.
    """
    if num_sinks < 1:
        raise InvalidParameterError("bus needs at least one sink")
    sinks = []
    for k in range(num_sinks):
        y = stub if k % 2 else -stub
        sinks.append(((k + 1) * pitch, y))
    return Net((0.0, 0.0), sinks, metric=Metric.L1, name=f"bus{num_sinks}")


def hub(num_sinks: int, radius: float = 50.0) -> Net:
    """Sinks strung along the four axis spokes of the source.

    Every source-to-sink path in any reasonable tree is a monotone run
    along a spoke, so the chained MST already satisfies *every* eps
    bound and all algorithms return cost ratio ~1 — a calibration
    anchor for the harness.
    """
    if num_sinks < 1:
        raise InvalidParameterError("hub needs at least one sink")
    directions = [(1.0, 0.0), (0.0, 1.0), (-1.0, 0.0), (0.0, -1.0)]
    sinks = []
    for k in range(num_sinks):
        dx, dy = directions[k % 4]
        r = radius * (1.0 + k // 4)
        sinks.append((r * dx, r * dy))
    return Net((0.0, 0.0), sinks, metric=Metric.L1, name=f"hub{num_sinks}")


def two_clusters(
    per_cluster: int,
    separation: float = 200.0,
    spread: float = 10.0,
) -> Net:
    """Two tight sink clusters far from the source and each other.

    Merges happen inside each cluster first (condition 3-b territory);
    the clusters then attach to the source via their witness nodes —
    the exact mechanics Lemma 3.1's proof walks through.
    """
    if per_cluster < 1:
        raise InvalidParameterError("clusters need at least one sink each")
    sinks: List[Tuple[float, float]] = []
    for k in range(per_cluster):
        jitter = spread * (k + 1) / per_cluster
        sinks.append((separation + jitter, jitter * (-1.0) ** k))
        sinks.append((-separation - jitter, jitter * (-1.0) ** (k + 1)))
    return Net(
        (0.0, 0.0), sinks, metric=Metric.L1, name=f"clusters{per_cluster}x2"
    )
