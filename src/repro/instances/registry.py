"""Benchmark registry: every instance the experiments use, by name.

Centralises instance construction so tests, benchmarks and the CLI all
load the exact same nets.  Names follow the paper: ``p1``-``p4``
(special), ``pr1``/``pr2`` and ``r1``-``r5`` (large synthetic
analogues, optionally scaled), and ``rnd<V>_<case>`` (random set 4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.exceptions import InvalidParameterError
from repro.core.net import Net
from repro.instances import large, random_nets, special

SPECIAL_NAMES = ("p1", "p2", "p3", "p4")
LARGE_NAMES = tuple(sorted(large.LARGE_SPECS))

_SPECIAL: Dict[str, Callable[[], Net]] = {
    "p1": special.p1,
    "p2": special.p2,
    "p3": special.p3,
    "p4": special.p4,
    "figure4": special.figure4_net,
    "figure5": special.figure5_net,
}


def benchmark_names() -> List[str]:
    """All loadable benchmark names (excluding the random families)."""
    return sorted(_SPECIAL) + list(LARGE_NAMES)


def load(name: str, scale: Optional[float] = None) -> Net:
    """Load a benchmark by name.

    ``scale`` applies only to the large benchmarks (see
    :func:`repro.instances.large.large_benchmark`); random nets are
    addressed as ``rnd<num_sinks>_<case>``.
    """
    if name in _SPECIAL:
        if scale is not None:
            raise InvalidParameterError(f"{name} does not take a scale")
        return _SPECIAL[name]()
    if name in large.LARGE_SPECS:
        return large.large_benchmark(name, scale if scale is not None else 1.0)
    if name.startswith("rnd"):
        try:
            size_part, case_part = name[3:].split("_", 1)
            return random_nets.random_net(int(size_part), int(case_part))
        except (ValueError, IndexError):
            raise InvalidParameterError(
                f"random net names look like rnd10_3, got {name!r}"
            ) from None
    raise InvalidParameterError(
        f"unknown benchmark {name!r}; known: {benchmark_names()} or rnd<V>_<case>"
    )


def special_benchmarks() -> List[Net]:
    """The four p* nets of Tables 2/5."""
    return [load(name) for name in SPECIAL_NAMES]


def large_benchmarks(scale: float = 1.0, names: Optional[List[str]] = None) -> List[Net]:
    """The pr*/r* analogues of Tables 3/5, at the requested scale."""
    chosen = names if names is not None else list(LARGE_NAMES)
    return [load(name, scale=scale) for name in chosen]
